//! The per-rank communicator handle.
//!
//! A [`Comm`] is what a rank's closure receives from [`crate::Cluster`]:
//! its identity (`rank`, `size`), typed point-to-point messaging, the
//! virtual clock, and accounting. Collectives live in
//! [`crate::collectives`] as inherent methods implemented over these
//! primitives.
//!
//! Every payload type must implement [`Wire`]; the cost-model byte size of
//! a message is derived from the payload itself (`Wire::wire_bytes`) at the
//! single point where it enters the fabric — call sites never supply byte
//! counts, so accounting cannot drift from the data.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use mnd_wire::Wire;

use crate::cost::CostModel;
use crate::fault::InjectorHook;
use crate::mailbox::{Envelope, Mailbox};
use crate::replay::{MidPhaseCrash, ReplayLog};
use crate::stats::RankStats;

/// Message tag. User code uses [`Tag::user`]; the collectives reserve the
/// upper tag space so they can never collide with application traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub(crate) u32);

impl Tag {
    const COLLECTIVE_BASE: u32 = 0x8000_0000;

    /// A user-space tag (`id < 2^31`; the upper half is reserved for the
    /// collectives in [`crate::collectives`]).
    pub const fn user(id: u32) -> Tag {
        assert!(id < Self::COLLECTIVE_BASE, "user tags must be < 2^31");
        Tag(id)
    }

    /// The raw tag id (collective tags keep their high bit set).
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Whether this tag belongs to the reserved collective space.
    pub const fn is_collective(self) -> bool {
        self.0 & Self::COLLECTIVE_BASE != 0
    }

    /// Human-readable name for traffic tables: collective tags get their
    /// collective's name, user tags print as `user(id)`.
    pub fn name(self) -> String {
        if self.is_collective() {
            match self.0 & !Self::COLLECTIVE_BASE {
                0 => "barrier".to_string(),
                1 => "reduce".to_string(),
                2 => "bcast".to_string(),
                3 => "gather".to_string(),
                4 => "alltoall".to_string(),
                5 => "reduce_vec".to_string(),
                6 => "phased".to_string(),
                7 => "sparse_hdr".to_string(),
                other => format!("collective({other})"),
            }
        } else {
            format!("user({})", self.0)
        }
    }
}

/// Shared (read-only) cluster state.
pub(crate) struct Fabric {
    pub mailboxes: Vec<Mailbox>,
    pub cost: CostModel,
    /// Fault plane (clean fabric when empty) — see [`crate::fault`].
    pub faults: InjectorHook,
}

/// The payload of a redundant copy injected by the fault plane; carries no
/// data because the receiver discards duplicates without downcasting.
struct DupGhost;

/// One rank's state: identity, clock, statistics — plus, when rollback
/// recovery is armed, the current epoch, the replay log, and the recovery
/// mode flags (see [`crate::replay`] and DESIGN.md §5f).
pub struct Comm {
    rank: usize,
    size: usize,
    fabric: Arc<Fabric>,
    clock: RefCell<f64>,
    stats: RefCell<RankStats>,
    /// Next send sequence number per `(dst, tag)`.
    send_seq: RefCell<HashMap<(usize, Tag), u64>>,
    /// Next expected delivery sequence number per `(src, tag)`.
    recv_seq: RefCell<HashMap<(usize, Tag), u64>>,
    /// Recovery points passed so far (drives replay-log keying and
    /// mid-phase crash scheduling).
    epoch: Cell<u32>,
    /// Fabric ops (sends + recvs) issued in the current epoch.
    ops_in_epoch: Cell<u64>,
    /// Op ordinal at which an injected mid-phase crash fires this epoch.
    armed_crash: Cell<Option<u64>>,
    /// Re-executing already-charged epochs after a crash: every charge is
    /// suppressed, sends are swallowed, recvs come from the log.
    fast_forward: Cell<bool>,
    /// Re-executing the interrupted epoch: compute is charged (and tracked
    /// as replayed), logged traffic is served free, first un-logged op
    /// drops back to live execution.
    replay_live: Cell<bool>,
    /// Send/recv log; `Some` once [`Comm::enable_replay_log`] ran.
    replay: RefCell<Option<ReplayLog>>,
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, fabric: Arc<Fabric>) -> Self {
        Comm {
            rank,
            size,
            fabric,
            clock: RefCell::new(0.0),
            stats: RefCell::new(RankStats::default()),
            send_seq: RefCell::new(HashMap::new()),
            recv_seq: RefCell::new(HashMap::new()),
            epoch: Cell::new(0),
            ops_in_epoch: Cell::new(0),
            armed_crash: Cell::new(None),
            fast_forward: Cell::new(false),
            replay_live: Cell::new(false),
            replay: RefCell::new(None),
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cluster's cost model.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.fabric.cost
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> f64 {
        *self.clock.borrow()
    }

    /// Snapshot of the accumulated statistics.
    #[inline]
    pub fn stats(&self) -> RankStats {
        self.stats.borrow().clone()
    }

    /// Advances the clock by `seconds` of modelled computation. Suppressed
    /// entirely in fast-forward (the work was charged before the crash);
    /// during replay of the interrupted epoch the re-execution is real
    /// recovery cost — charged normally and additionally tracked in
    /// [`RankStats::replayed_compute`].
    pub fn compute(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        if self.fast_forward.get() {
            return;
        }
        *self.clock.borrow_mut() += seconds;
        let mut s = self.stats.borrow_mut();
        s.compute_time += seconds;
        if self.replay_live.get() {
            s.replayed_compute += seconds;
        }
    }

    /// Advances the clock by `seconds` booked as *communication* — for
    /// modelled messaging-stack overheads (serialisation, envelopes) that
    /// are not captured by the per-payload cost model. Suppressed in
    /// fast-forward like [`Comm::compute`].
    pub fn charge_comm(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative comm time");
        if self.fast_forward.get() {
            return;
        }
        *self.clock.borrow_mut() += seconds;
        self.stats.borrow_mut().comm_time += seconds;
    }

    /// Advances the clock by `seconds` of injected stall: booked as
    /// communication (dead air on the fabric) and additionally tracked in
    /// [`RankStats::stall_time`] so chaos runs can separate fault latency
    /// from real traffic. Suppressed in fast-forward.
    pub fn stall(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative stall time");
        if self.fast_forward.get() {
            return;
        }
        *self.clock.borrow_mut() += seconds;
        let mut s = self.stats.borrow_mut();
        s.comm_time += seconds;
        s.stall_time += seconds;
    }

    /// Counts one phase-boundary checkpoint write of `bytes` wire bytes
    /// (the time cost is charged separately by the caller, which owns the
    /// storage model).
    pub fn note_checkpoint_write(&self, bytes: u64) {
        let mut s = self.stats.borrow_mut();
        s.checkpoint_writes += 1;
        s.checkpoint_bytes += bytes;
    }

    /// Counts one checkpoint restore after an injected crash.
    pub fn note_checkpoint_restore(&self) {
        self.stats.borrow_mut().checkpoint_restores += 1;
    }

    /// Turns on the send/recv replay log (no-op if already on). Armed by
    /// the driver whenever a chaos plan is attached; logging itself never
    /// touches the virtual clock, so fault-free results are unchanged.
    pub fn enable_replay_log(&self) {
        let mut replay = self.replay.borrow_mut();
        if replay.is_none() {
            *replay = Some(ReplayLog::default());
        }
    }

    /// Drops the replay log (end of run).
    pub fn clear_replay_log(&self) {
        *self.replay.borrow_mut() = None;
    }

    /// Retires the replay log because the active chaos plan can no longer
    /// crash this rank mid-phase (the rank's epoch passed the plan's
    /// *replay horizon*): all logged payloads and send tallies are dropped
    /// and no further traffic is logged. Unlike [`Comm::clear_replay_log`]
    /// this is a GC decision taken mid-run — it is only sound when the
    /// horizon really covers every scheduled crash (see
    /// [`crate::replay`] module docs).
    pub fn retire_replay_log(&self) {
        *self.replay.borrow_mut() = None;
    }

    /// Number of inbound payloads currently held by the replay log
    /// (0 when the log is off or retired). Lets tests assert the
    /// replay-horizon GC keeps the log bounded.
    pub fn replay_recv_entries(&self) -> usize {
        self.replay
            .borrow()
            .as_ref()
            .map_or(0, |log| log.recv_entries())
    }

    /// Current epoch: the number of recovery points this rank has passed.
    #[inline]
    pub fn epoch(&self) -> u32 {
        self.epoch.get()
    }

    /// Enters the next epoch (called by the driver at each recovery
    /// point): the per-epoch op counter restarts and any armed mid-phase
    /// crash is disarmed (it belonged to the epoch that just ended).
    pub fn advance_epoch(&self) {
        self.epoch.set(self.epoch.get() + 1);
        self.ops_in_epoch.set(0);
        self.armed_crash.set(None);
    }

    /// Arms an injected crash at fabric-op `at_op` of the current epoch.
    /// The crash fires *before* the op executes, as a
    /// [`MidPhaseCrash`] panic the driver catches.
    pub fn arm_mid_phase_crash(&self, at_op: u64) {
        self.armed_crash.set(Some(at_op));
    }

    /// Enters/leaves fast-forward: zero-cost re-execution of epochs that
    /// were fully charged before a crash (sends swallowed, recvs served
    /// from the log, no clock or stats movement).
    pub fn set_fast_forward(&self, on: bool) {
        self.fast_forward.set(on);
    }

    /// Whether the rank is fast-forwarding (drivers gate observation and
    /// checkpointing off while it is).
    #[inline]
    pub fn fast_forward(&self) -> bool {
        self.fast_forward.get()
    }

    /// Enters/leaves replay of the interrupted epoch: compute is charged
    /// (and tracked as replayed), logged traffic is free, and the first
    /// op beyond the log drops back to live execution automatically.
    pub fn set_replay_live(&self, on: bool) {
        self.replay_live.set(on);
    }

    /// Whether the rank is replaying the interrupted epoch.
    #[inline]
    pub fn replay_live(&self) -> bool {
        self.replay_live.get()
    }

    /// Resets message sequence numbers, epoch, and op counters for a
    /// from-the-top re-execution after a crash. The sequence maps double
    /// as the replay cursors: they re-advance through the log and the
    /// first miss marks the op where the crash interrupted the rank.
    pub fn reset_sequences(&self) {
        self.send_seq.borrow_mut().clear();
        self.recv_seq.borrow_mut().clear();
        self.epoch.set(0);
        self.ops_in_epoch.set(0);
        self.armed_crash.set(None);
    }

    /// Garbage-collects the send-side replay tally for epochs `<= epoch`
    /// (called when the checkpoint ending `epoch` commits — rollback can
    /// never re-enter those epochs).
    pub fn gc_replay_sends(&self, epoch: u32) {
        if let Some(log) = self.replay.borrow_mut().as_mut() {
            log.gc_sends_through(epoch);
        }
    }

    /// Books one fabric op (send or recv): the mid-phase crash trigger.
    /// Not counted during fast-forward — op ordinals are defined over the
    /// charged execution, and fast-forward replays ops that were already
    /// counted before the crash.
    fn fabric_op(&self) {
        if self.fast_forward.get() {
            return;
        }
        let op = self.ops_in_epoch.get();
        self.ops_in_epoch.set(op + 1);
        if self.armed_crash.get() == Some(op) {
            self.armed_crash.set(None);
            std::panic::panic_any(MidPhaseCrash {
                epoch: self.epoch.get(),
                op,
            });
        }
    }

    /// Sends `value` to `dst`. The payload size charged to the cost model
    /// and to [`RankStats`] is `value.wire_bytes()`.
    ///
    /// The sender's clock advances by the send busy time; the message's
    /// arrival time at `dst` is `now + latency + bytes/bandwidth`.
    ///
    /// When a fault injector is installed ([`crate::fault`]), the
    /// transmission's [`crate::fault::SendFate`] may perturb this: each
    /// drop costs the sender a retransmission (busy time plus
    /// [`CostModel::retry_timeout`] of dead air, counted in
    /// [`RankStats::retries`]), delivery may pick up extra transit skew,
    /// and duplicate copies may be deposited for the receiver to discard.
    /// Delivery itself stays reliable and in order — faults perturb time
    /// and accounting, never the payload stream.
    ///
    /// # Panics
    ///
    /// If `dst` is out of range or equal to this rank (use a local variable
    /// instead of a self-send).
    pub fn send<T: Wire>(&self, dst: usize, tag: Tag, value: T) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(
            dst, self.rank,
            "self-send unsupported (use a local variable)"
        );
        self.fabric_op();
        let bytes = value.wire_bytes();
        let cost = &self.fabric.cost;
        let seq = {
            let mut m = self.send_seq.borrow_mut();
            let slot = m.entry((dst, tag)).or_insert(0);
            let seq = *slot;
            *slot += 1;
            seq
        };
        if self.fast_forward.get() || self.replay_live.get() {
            // Re-execution after a crash: a copy with this sequence number
            // may already be on the fabric (the receiver holds or consumed
            // it) — depositing again would corrupt the stream and double-
            // charge bytes. Suppress it; the sequence number stays burned.
            let transmitted = self
                .replay
                .borrow()
                .as_ref()
                .map_or(0, |log| log.transmitted(dst, tag));
            if seq < transmitted {
                return;
            }
            if self.fast_forward.get() {
                panic!(
                    "rank {}: fast-forward reached an unsent message to rank {dst} \
                     tag {tag:?} seq {seq} — non-deterministic re-execution",
                    self.rank
                );
            }
            // Replay caught up with the crash point: this op never made it
            // onto the fabric, so execution is live again from here on.
            self.replay_live.set(false);
        }
        if let Some(log) = self.replay.borrow_mut().as_mut() {
            log.record_send(self.epoch.get(), dst, tag);
        }
        let fate = self.fabric.faults.fate(self.rank, dst, tag, seq, bytes);
        let depart = self.now();
        let busy = cost.send_busy(bytes);
        // Each dropped copy costs a full (re)serialisation plus a
        // retransmission timeout of dead air before the next attempt.
        let retry_wait: f64 = (0..fate.retries).map(|k| cost.retry_timeout(k)).sum();
        let total_busy = busy * (1 + fate.retries) as f64 + retry_wait;
        *self.clock.borrow_mut() += total_busy;
        {
            let mut s = self.stats.borrow_mut();
            s.comm_time += total_busy;
            s.record_send(tag, bytes);
            s.record_retries(tag, fate.retries as u64);
        }
        // The surviving copy departs at the start of the last attempt.
        let arrival =
            depart + busy * fate.retries as f64 + retry_wait + cost.transit(bytes) + fate.delay;
        let mailbox = &self.fabric.mailboxes[dst];
        let epoch = self.epoch.get();
        let ghost = |arrival: f64| Envelope {
            payload: Box::new(DupGhost),
            arrival,
            bytes,
            seq,
            epoch,
            dup: true,
        };
        if fate.reorder {
            // A stale copy races ahead of the real one: deposited first, so
            // the receiver encounters it out of order and must filter it.
            mailbox.deposit(self.rank, tag, ghost(arrival));
        }
        mailbox.deposit(
            self.rank,
            tag,
            Envelope {
                payload: Box::new(value),
                arrival,
                bytes,
                seq,
                epoch,
                dup: false,
            },
        );
        for k in 0..fate.duplicates {
            mailbox.deposit(self.rank, tag, ghost(arrival + cost.retry_timeout(k)));
        }
    }

    /// Receives the next message from `(src, tag)`, blocking until it is
    /// available. The virtual clock advances to at least the message's
    /// arrival time (the wait is booked as communication), plus the
    /// receiver overhead.
    ///
    /// During post-crash re-execution, deliveries the rank already
    /// consumed are served from the replay log instead of the fabric: no
    /// wait, no byte accounting (the bytes were charged at first
    /// delivery), with the replayed volume tracked in
    /// [`RankStats::replayed_in_bytes`] while the interrupted epoch
    /// re-runs. The payload must be `Clone` so the log can keep a copy.
    ///
    /// # Panics
    ///
    /// If the payload's type is not `T` (datatype mismatch), if `src` is
    /// out of range or equal to this rank, or — after a generous wall-clock
    /// timeout — if the message never arrives (distributed deadlock).
    pub fn recv<T: Clone + Send + 'static>(&self, src: usize, tag: Tag) -> T {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        assert_ne!(src, self.rank, "self-recv unsupported");
        self.fabric_op();
        let cost = &self.fabric.cost;
        if self.fast_forward.get() || self.replay_live.get() {
            let seq = self
                .recv_seq
                .borrow()
                .get(&(src, tag))
                .copied()
                .unwrap_or(0);
            let served = self
                .replay
                .borrow()
                .as_ref()
                .and_then(|log| log.replay_recv(src, tag, seq));
            match served {
                Some((bytes, payload)) => {
                    *self.recv_seq.borrow_mut().entry((src, tag)).or_insert(0) = seq + 1;
                    if self.replay_live.get() {
                        self.stats.borrow_mut().replayed_in_bytes += bytes;
                    }
                    return *payload.downcast::<T>().unwrap_or_else(|_| {
                        panic!(
                            "rank {}: type mismatch replaying from rank {src} tag {tag:?} \
                             (expected {})",
                            self.rank,
                            std::any::type_name::<T>()
                        )
                    });
                }
                None if self.fast_forward.get() => panic!(
                    "rank {}: fast-forward missed a logged message from rank {src} \
                     tag {tag:?} seq {seq} — non-deterministic re-execution",
                    self.rank
                ),
                None => {
                    // First delivery beyond the log: the crash interrupted
                    // the rank before this op, so execution is live again.
                    self.replay_live.set(false);
                }
            }
        }
        let env = loop {
            let env = self.fabric.mailboxes[self.rank].take(src, tag, self.rank);
            if !env.dup {
                break env;
            }
            // A redundant copy injected by the fault plane: examine (pay
            // the receive overhead at its arrival) and discard.
            let mut clock = self.clock.borrow_mut();
            let mut s = self.stats.borrow_mut();
            let before = *clock;
            *clock = env.arrival.max(before) + cost.recv_busy();
            s.comm_time += *clock - before;
            s.record_redelivery(tag);
        };
        {
            let mut expected = self.recv_seq.borrow_mut();
            let slot = expected.entry((src, tag)).or_insert(0);
            debug_assert_eq!(
                env.seq, *slot,
                "rank {}: out-of-sequence delivery from rank {src} tag {tag:?}",
                self.rank
            );
            *slot = env.seq + 1;
        }
        {
            let mut clock = self.clock.borrow_mut();
            let mut s = self.stats.borrow_mut();
            let before = *clock;
            let ready = env.arrival.max(before);
            *clock = ready + cost.recv_busy();
            s.comm_time += *clock - before;
            s.record_recv(tag, env.bytes);
        }
        let value = *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving from rank {src} tag {tag:?} (expected {})",
                self.rank,
                std::any::type_name::<T>()
            )
        });
        if let Some(log) = self.replay.borrow_mut().as_mut() {
            let copy = value.clone();
            log.record_recv(
                env.epoch,
                src,
                tag,
                env.seq,
                env.bytes,
                Box::new(move || Box::new(copy.clone())),
            );
        }
        value
    }

    /// Sends to `dst` and receives from `src` — the deadlock-free pairwise
    /// exchange used by ring steps (send is non-blocking in this model, so
    /// ordering is safe; the helper exists for readability).
    pub fn send_recv<T: Wire, U: Clone + Send + 'static>(
        &self,
        dst: usize,
        send_tag: Tag,
        value: T,
        src: usize,
        recv_tag: Tag,
    ) -> U {
        self.send(dst, send_tag, value);
        self.recv(src, recv_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn clock_advances_with_compute() {
        let out = Cluster::new(1, CostModel::free()).run(|c| {
            c.compute(2.5);
            c.now()
        });
        assert_eq!(out[0].result, 2.5);
        assert_eq!(out[0].stats.compute_time, 2.5);
    }

    #[test]
    fn message_bytes_derive_from_payload() {
        let cost = CostModel {
            latency: 1e-3,
            bandwidth: 1e6,
            overhead: 0.0,
            byte_scale: 1.0,
        };
        let out = Cluster::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, Tag::user(0), vec![7u32; 250]); // 1000 wire bytes
                0u32
            } else {
                let v: Vec<u32> = c.recv(0, Tag::user(0));
                assert_eq!(v.len(), 250);
                // Arrival = 0 + 1ms latency + 1ms serialisation.
                assert!((c.now() - 2e-3).abs() < 1e-9, "clock {}", c.now());
                v[0]
            }
        });
        assert_eq!(out[1].result, 7);
        assert_eq!(out[0].stats.bytes_sent, 1000);
        assert_eq!(out[0].stats.by_tag[&Tag::user(0)].bytes_sent, 1000);
        assert_eq!(out[1].stats.messages_received, 1);
        assert_eq!(out[1].stats.by_tag[&Tag::user(0)].bytes_received, 1000);
        assert!(out[1].stats.comm_time > 0.0);
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let cost = CostModel::free();
        let out = Cluster::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.compute(5.0); // sender is busy for 5 virtual seconds
                c.send(1, Tag::user(0), 1u8);
                c.now()
            } else {
                let _: u8 = c.recv(0, Tag::user(0));
                c.now() // must be >= 5.0 despite doing nothing itself
            }
        });
        assert!(out[1].result >= 5.0);
        assert_eq!(out[1].stats.comm_time, 5.0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Cluster::new(2, CostModel::free()).run(|c| {
            if c.rank() == 0 {
                c.send(1, Tag::user(0), 1u8);
            } else {
                let _: u64 = c.recv(0, Tag::user(0));
            }
        });
    }

    #[test]
    fn non_overtaking_same_key() {
        let out = Cluster::new(2, CostModel::free()).run(|c| {
            if c.rank() == 0 {
                for i in 0..10u32 {
                    c.send(1, Tag::user(3), i);
                }
                vec![]
            } else {
                (0..10)
                    .map(|_| c.recv::<u32>(0, Tag::user(3)))
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1].result, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tag_space_split() {
        assert_eq!(Tag::user(7).id(), 7);
        assert!(!Tag::user(7).is_collective());
        assert_eq!(Tag::user(7).name(), "user(7)");
    }

    mod replay_gc {
        use super::*;

        /// Drives a long multi-epoch exchange, committing a recovery point
        /// per epoch, and returns (peak, final) recv-log sizes. With a
        /// finite horizon the log must be retired once the epoch passes
        /// it; with no horizon it grows for the whole run.
        fn run_epochs(epochs: u32, horizon: Option<u32>) -> Vec<(usize, usize)> {
            Cluster::new(2, CostModel::free())
                .run(move |c| {
                    c.enable_replay_log();
                    let peer = 1 - c.rank();
                    let mut peak = 0usize;
                    for e in 0..epochs {
                        c.send(peer, Tag::user(0), vec![e; 4]);
                        let _: Vec<u32> = c.recv(peer, Tag::user(0));
                        peak = peak.max(c.replay_recv_entries());
                        // Recovery-point commit, as the drivers do it.
                        c.gc_replay_sends(c.epoch());
                        c.advance_epoch();
                        if let Some(h) = horizon {
                            if c.epoch() >= h {
                                c.retire_replay_log();
                            }
                        }
                    }
                    (peak, c.replay_recv_entries())
                })
                .into_iter()
                .map(|o| o.result)
                .collect()
        }

        #[test]
        fn replay_horizon_bounds_the_recv_log() {
            // Last possible mid-phase crash in epoch 2 => horizon 3: the
            // log holds at most the 3 faulty-prefix epochs' messages and
            // is empty from the horizon on.
            for (peak, fin) in run_epochs(64, Some(3)) {
                assert!(peak <= 3, "log grew past the faulty prefix: {peak}");
                assert_eq!(fin, 0, "log must be retired at the horizon");
            }
            // Without a horizon the log keeps every delivery of the run —
            // the unbounded growth the GC exists to prevent.
            for (peak, fin) in run_epochs(64, None) {
                assert_eq!(peak, 64);
                assert_eq!(fin, 64);
            }
        }
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultInjector, SendFate};
        use std::sync::Arc;

        /// Drops the first copy of every message once.
        struct DropOnce;
        impl FaultInjector for DropOnce {
            fn fate(&self, _: usize, _: usize, _: Tag, _: u64, _: u64) -> SendFate {
                SendFate {
                    retries: 1,
                    ..SendFate::CLEAN
                }
            }
        }

        /// Duplicates every message and races one stale copy ahead.
        struct DupAndReorder;
        impl FaultInjector for DupAndReorder {
            fn fate(&self, _: usize, _: usize, _: Tag, _: u64, _: u64) -> SendFate {
                SendFate {
                    duplicates: 1,
                    reorder: true,
                    ..SendFate::CLEAN
                }
            }
        }

        #[test]
        fn drops_charge_retry_latency_and_count() {
            let run = |faulty: bool| {
                let cost = CostModel::default_cluster();
                let mut cluster = Cluster::new(2, cost);
                if faulty {
                    cluster = cluster.with_fault_injector(Arc::new(DropOnce));
                }
                cluster.run(|c| {
                    if c.rank() == 0 {
                        c.send(1, Tag::user(0), vec![1u8; 512]);
                    } else {
                        let v: Vec<u8> = c.recv(0, Tag::user(0));
                        assert_eq!(v.len(), 512);
                    }
                })
            };
            let clean = run(false);
            let faulty = run(true);
            assert_eq!(clean[0].stats.retries, 0);
            assert_eq!(faulty[0].stats.retries, 1);
            assert_eq!(faulty[0].stats.by_tag[&Tag::user(0)].retries, 1);
            // One retransmission: at least one retry timeout of extra time
            // on both the sender and the (waiting) receiver.
            let rto = CostModel::default_cluster().retry_timeout(0);
            assert!(faulty[0].final_clock >= clean[0].final_clock + rto);
            assert!(faulty[1].final_clock >= clean[1].final_clock + rto);
            // Payload accounting is unchanged: one logical message.
            assert_eq!(faulty[0].stats.messages_sent, 1);
            assert_eq!(faulty[0].stats.bytes_sent, 512);
        }

        #[test]
        fn duplicates_are_discarded_in_order() {
            let out = Cluster::new(2, CostModel::free())
                .with_fault_injector(Arc::new(DupAndReorder))
                .run(|c| {
                    if c.rank() == 0 {
                        for i in 0..5u32 {
                            c.send(1, Tag::user(3), i);
                        }
                        vec![]
                    } else {
                        (0..5)
                            .map(|_| c.recv::<u32>(0, Tag::user(3)))
                            .collect::<Vec<_>>()
                    }
                });
            // The payload stream is intact and in order...
            assert_eq!(out[1].result, (0..5).collect::<Vec<_>>());
            // ...and the receiver discarded the racing copies it saw: all 5
            // reordered ghosts arrive ahead of their real copy; trailing
            // duplicates of the final message linger undisturbed.
            assert!(out[1].stats.redeliveries >= 5);
            assert_eq!(out[1].stats.messages_received, 5);
        }

        #[test]
        fn fault_schedule_is_deterministic() {
            let run = || {
                Cluster::new(3, CostModel::default_cluster())
                    .with_fault_injector(Arc::new(DropOnce))
                    .run(|c| {
                        let n = c.size();
                        let me = c.rank();
                        for round in 0..3u32 {
                            c.send((me + 1) % n, Tag::user(round), vec![0u8; 256]);
                            let _: Vec<u8> = c.recv((me + n - 1) % n, Tag::user(round));
                        }
                        c.now()
                    })
                    .iter()
                    .map(|o| (o.result, o.stats.retries, o.stats.redeliveries))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(), run(), "fault schedule must be replayable");
        }
    }
}
