//! The per-rank communicator handle.
//!
//! A [`Comm`] is what a rank's closure receives from [`crate::Cluster`]:
//! its identity (`rank`, `size`), typed point-to-point messaging, the
//! virtual clock, and accounting. Collectives live in
//! [`crate::collectives`] as inherent methods implemented over these
//! primitives.
//!
//! Every payload type must implement [`Wire`]; the cost-model byte size of
//! a message is derived from the payload itself (`Wire::wire_bytes`) at the
//! single point where it enters the fabric — call sites never supply byte
//! counts, so accounting cannot drift from the data.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use mnd_wire::Wire;

use crate::cost::CostModel;
use crate::fault::InjectorHook;
use crate::mailbox::{Envelope, Mailbox};
use crate::stats::RankStats;

/// Message tag. User code uses [`Tag::user`]; the collectives reserve the
/// upper tag space so they can never collide with application traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub(crate) u32);

impl Tag {
    const COLLECTIVE_BASE: u32 = 0x8000_0000;

    /// A user-space tag (`id < 2^31`; the upper half is reserved for the
    /// collectives in [`crate::collectives`]).
    pub const fn user(id: u32) -> Tag {
        assert!(id < Self::COLLECTIVE_BASE, "user tags must be < 2^31");
        Tag(id)
    }

    /// The raw tag id (collective tags keep their high bit set).
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Whether this tag belongs to the reserved collective space.
    pub const fn is_collective(self) -> bool {
        self.0 & Self::COLLECTIVE_BASE != 0
    }

    /// Human-readable name for traffic tables: collective tags get their
    /// collective's name, user tags print as `user(id)`.
    pub fn name(self) -> String {
        if self.is_collective() {
            match self.0 & !Self::COLLECTIVE_BASE {
                0 => "barrier".to_string(),
                1 => "reduce".to_string(),
                2 => "bcast".to_string(),
                3 => "gather".to_string(),
                4 => "alltoall".to_string(),
                5 => "reduce_vec".to_string(),
                6 => "phased".to_string(),
                other => format!("collective({other})"),
            }
        } else {
            format!("user({})", self.0)
        }
    }
}

/// Shared (read-only) cluster state.
pub(crate) struct Fabric {
    pub mailboxes: Vec<Mailbox>,
    pub cost: CostModel,
    /// Fault plane (clean fabric when empty) — see [`crate::fault`].
    pub faults: InjectorHook,
}

/// The payload of a redundant copy injected by the fault plane; carries no
/// data because the receiver discards duplicates without downcasting.
struct DupGhost;

/// One rank's state: identity, clock, statistics.
pub struct Comm {
    rank: usize,
    size: usize,
    fabric: Arc<Fabric>,
    clock: RefCell<f64>,
    stats: RefCell<RankStats>,
    /// Next send sequence number per `(dst, tag)`.
    send_seq: RefCell<HashMap<(usize, Tag), u64>>,
    /// Next expected delivery sequence number per `(src, tag)`.
    recv_seq: RefCell<HashMap<(usize, Tag), u64>>,
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, fabric: Arc<Fabric>) -> Self {
        Comm {
            rank,
            size,
            fabric,
            clock: RefCell::new(0.0),
            stats: RefCell::new(RankStats::default()),
            send_seq: RefCell::new(HashMap::new()),
            recv_seq: RefCell::new(HashMap::new()),
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cluster's cost model.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.fabric.cost
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> f64 {
        *self.clock.borrow()
    }

    /// Snapshot of the accumulated statistics.
    #[inline]
    pub fn stats(&self) -> RankStats {
        self.stats.borrow().clone()
    }

    /// Advances the clock by `seconds` of modelled computation.
    pub fn compute(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        *self.clock.borrow_mut() += seconds;
        self.stats.borrow_mut().compute_time += seconds;
    }

    /// Advances the clock by `seconds` booked as *communication* — for
    /// modelled messaging-stack overheads (serialisation, envelopes) that
    /// are not captured by the per-payload cost model.
    pub fn charge_comm(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative comm time");
        *self.clock.borrow_mut() += seconds;
        self.stats.borrow_mut().comm_time += seconds;
    }

    /// Advances the clock by `seconds` of injected stall: booked as
    /// communication (dead air on the fabric) and additionally tracked in
    /// [`RankStats::stall_time`] so chaos runs can separate fault latency
    /// from real traffic.
    pub fn stall(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative stall time");
        *self.clock.borrow_mut() += seconds;
        let mut s = self.stats.borrow_mut();
        s.comm_time += seconds;
        s.stall_time += seconds;
    }

    /// Counts one phase-boundary checkpoint write (the time cost is charged
    /// separately by the caller, which knows the checkpoint's wire size).
    pub fn note_checkpoint_write(&self) {
        self.stats.borrow_mut().checkpoint_writes += 1;
    }

    /// Counts one checkpoint restore after an injected crash.
    pub fn note_checkpoint_restore(&self) {
        self.stats.borrow_mut().checkpoint_restores += 1;
    }

    /// Sends `value` to `dst`. The payload size charged to the cost model
    /// and to [`RankStats`] is `value.wire_bytes()`.
    ///
    /// The sender's clock advances by the send busy time; the message's
    /// arrival time at `dst` is `now + latency + bytes/bandwidth`.
    ///
    /// When a fault injector is installed ([`crate::fault`]), the
    /// transmission's [`crate::fault::SendFate`] may perturb this: each
    /// drop costs the sender a retransmission (busy time plus
    /// [`CostModel::retry_timeout`] of dead air, counted in
    /// [`RankStats::retries`]), delivery may pick up extra transit skew,
    /// and duplicate copies may be deposited for the receiver to discard.
    /// Delivery itself stays reliable and in order — faults perturb time
    /// and accounting, never the payload stream.
    ///
    /// # Panics
    ///
    /// If `dst` is out of range or equal to this rank (use a local variable
    /// instead of a self-send).
    pub fn send<T: Wire>(&self, dst: usize, tag: Tag, value: T) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(
            dst, self.rank,
            "self-send unsupported (use a local variable)"
        );
        let bytes = value.wire_bytes();
        let cost = &self.fabric.cost;
        let seq = {
            let mut m = self.send_seq.borrow_mut();
            let slot = m.entry((dst, tag)).or_insert(0);
            let seq = *slot;
            *slot += 1;
            seq
        };
        let fate = self.fabric.faults.fate(self.rank, dst, tag, seq, bytes);
        let depart = self.now();
        let busy = cost.send_busy(bytes);
        // Each dropped copy costs a full (re)serialisation plus a
        // retransmission timeout of dead air before the next attempt.
        let retry_wait: f64 = (0..fate.retries).map(|k| cost.retry_timeout(k)).sum();
        let total_busy = busy * (1 + fate.retries) as f64 + retry_wait;
        *self.clock.borrow_mut() += total_busy;
        {
            let mut s = self.stats.borrow_mut();
            s.comm_time += total_busy;
            s.record_send(tag, bytes);
            s.record_retries(tag, fate.retries as u64);
        }
        // The surviving copy departs at the start of the last attempt.
        let arrival =
            depart + busy * fate.retries as f64 + retry_wait + cost.transit(bytes) + fate.delay;
        let mailbox = &self.fabric.mailboxes[dst];
        let ghost = |arrival: f64| Envelope {
            payload: Box::new(DupGhost),
            arrival,
            bytes,
            seq,
            dup: true,
        };
        if fate.reorder {
            // A stale copy races ahead of the real one: deposited first, so
            // the receiver encounters it out of order and must filter it.
            mailbox.deposit(self.rank, tag, ghost(arrival));
        }
        mailbox.deposit(
            self.rank,
            tag,
            Envelope {
                payload: Box::new(value),
                arrival,
                bytes,
                seq,
                dup: false,
            },
        );
        for k in 0..fate.duplicates {
            mailbox.deposit(self.rank, tag, ghost(arrival + cost.retry_timeout(k)));
        }
    }

    /// Receives the next message from `(src, tag)`, blocking until it is
    /// available. The virtual clock advances to at least the message's
    /// arrival time (the wait is booked as communication), plus the
    /// receiver overhead.
    ///
    /// # Panics
    ///
    /// If the payload's type is not `T` (datatype mismatch), if `src` is
    /// out of range or equal to this rank, or — after a generous wall-clock
    /// timeout — if the message never arrives (distributed deadlock).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: Tag) -> T {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        assert_ne!(src, self.rank, "self-recv unsupported");
        let cost = &self.fabric.cost;
        let env = loop {
            let env = self.fabric.mailboxes[self.rank].take(src, tag, self.rank);
            if !env.dup {
                break env;
            }
            // A redundant copy injected by the fault plane: examine (pay
            // the receive overhead at its arrival) and discard.
            let mut clock = self.clock.borrow_mut();
            let mut s = self.stats.borrow_mut();
            let before = *clock;
            *clock = env.arrival.max(before) + cost.recv_busy();
            s.comm_time += *clock - before;
            s.record_redelivery(tag);
        };
        {
            let mut expected = self.recv_seq.borrow_mut();
            let slot = expected.entry((src, tag)).or_insert(0);
            debug_assert_eq!(
                env.seq, *slot,
                "rank {}: out-of-sequence delivery from rank {src} tag {tag:?}",
                self.rank
            );
            *slot = env.seq + 1;
        }
        {
            let mut clock = self.clock.borrow_mut();
            let mut s = self.stats.borrow_mut();
            let before = *clock;
            let ready = env.arrival.max(before);
            *clock = ready + cost.recv_busy();
            s.comm_time += *clock - before;
            s.record_recv(tag, env.bytes);
        }
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving from rank {src} tag {tag:?} (expected {})",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    /// Sends to `dst` and receives from `src` — the deadlock-free pairwise
    /// exchange used by ring steps (send is non-blocking in this model, so
    /// ordering is safe; the helper exists for readability).
    pub fn send_recv<T: Wire, U: Send + 'static>(
        &self,
        dst: usize,
        send_tag: Tag,
        value: T,
        src: usize,
        recv_tag: Tag,
    ) -> U {
        self.send(dst, send_tag, value);
        self.recv(src, recv_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn clock_advances_with_compute() {
        let out = Cluster::new(1, CostModel::free()).run(|c| {
            c.compute(2.5);
            c.now()
        });
        assert_eq!(out[0].result, 2.5);
        assert_eq!(out[0].stats.compute_time, 2.5);
    }

    #[test]
    fn message_bytes_derive_from_payload() {
        let cost = CostModel {
            latency: 1e-3,
            bandwidth: 1e6,
            overhead: 0.0,
            byte_scale: 1.0,
        };
        let out = Cluster::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, Tag::user(0), vec![7u32; 250]); // 1000 wire bytes
                0u32
            } else {
                let v: Vec<u32> = c.recv(0, Tag::user(0));
                assert_eq!(v.len(), 250);
                // Arrival = 0 + 1ms latency + 1ms serialisation.
                assert!((c.now() - 2e-3).abs() < 1e-9, "clock {}", c.now());
                v[0]
            }
        });
        assert_eq!(out[1].result, 7);
        assert_eq!(out[0].stats.bytes_sent, 1000);
        assert_eq!(out[0].stats.by_tag[&Tag::user(0)].bytes_sent, 1000);
        assert_eq!(out[1].stats.messages_received, 1);
        assert_eq!(out[1].stats.by_tag[&Tag::user(0)].bytes_received, 1000);
        assert!(out[1].stats.comm_time > 0.0);
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let cost = CostModel::free();
        let out = Cluster::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.compute(5.0); // sender is busy for 5 virtual seconds
                c.send(1, Tag::user(0), 1u8);
                c.now()
            } else {
                let _: u8 = c.recv(0, Tag::user(0));
                c.now() // must be >= 5.0 despite doing nothing itself
            }
        });
        assert!(out[1].result >= 5.0);
        assert_eq!(out[1].stats.comm_time, 5.0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Cluster::new(2, CostModel::free()).run(|c| {
            if c.rank() == 0 {
                c.send(1, Tag::user(0), 1u8);
            } else {
                let _: u64 = c.recv(0, Tag::user(0));
            }
        });
    }

    #[test]
    fn non_overtaking_same_key() {
        let out = Cluster::new(2, CostModel::free()).run(|c| {
            if c.rank() == 0 {
                for i in 0..10u32 {
                    c.send(1, Tag::user(3), i);
                }
                vec![]
            } else {
                (0..10)
                    .map(|_| c.recv::<u32>(0, Tag::user(3)))
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1].result, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tag_space_split() {
        assert_eq!(Tag::user(7).id(), 7);
        assert!(!Tag::user(7).is_collective());
        assert_eq!(Tag::user(7).name(), "user(7)");
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultInjector, SendFate};
        use std::sync::Arc;

        /// Drops the first copy of every message once.
        struct DropOnce;
        impl FaultInjector for DropOnce {
            fn fate(&self, _: usize, _: usize, _: Tag, _: u64, _: u64) -> SendFate {
                SendFate {
                    retries: 1,
                    ..SendFate::CLEAN
                }
            }
        }

        /// Duplicates every message and races one stale copy ahead.
        struct DupAndReorder;
        impl FaultInjector for DupAndReorder {
            fn fate(&self, _: usize, _: usize, _: Tag, _: u64, _: u64) -> SendFate {
                SendFate {
                    duplicates: 1,
                    reorder: true,
                    ..SendFate::CLEAN
                }
            }
        }

        #[test]
        fn drops_charge_retry_latency_and_count() {
            let run = |faulty: bool| {
                let cost = CostModel::default_cluster();
                let mut cluster = Cluster::new(2, cost);
                if faulty {
                    cluster = cluster.with_fault_injector(Arc::new(DropOnce));
                }
                cluster.run(|c| {
                    if c.rank() == 0 {
                        c.send(1, Tag::user(0), vec![1u8; 512]);
                    } else {
                        let v: Vec<u8> = c.recv(0, Tag::user(0));
                        assert_eq!(v.len(), 512);
                    }
                })
            };
            let clean = run(false);
            let faulty = run(true);
            assert_eq!(clean[0].stats.retries, 0);
            assert_eq!(faulty[0].stats.retries, 1);
            assert_eq!(faulty[0].stats.by_tag[&Tag::user(0)].retries, 1);
            // One retransmission: at least one retry timeout of extra time
            // on both the sender and the (waiting) receiver.
            let rto = CostModel::default_cluster().retry_timeout(0);
            assert!(faulty[0].final_clock >= clean[0].final_clock + rto);
            assert!(faulty[1].final_clock >= clean[1].final_clock + rto);
            // Payload accounting is unchanged: one logical message.
            assert_eq!(faulty[0].stats.messages_sent, 1);
            assert_eq!(faulty[0].stats.bytes_sent, 512);
        }

        #[test]
        fn duplicates_are_discarded_in_order() {
            let out = Cluster::new(2, CostModel::free())
                .with_fault_injector(Arc::new(DupAndReorder))
                .run(|c| {
                    if c.rank() == 0 {
                        for i in 0..5u32 {
                            c.send(1, Tag::user(3), i);
                        }
                        vec![]
                    } else {
                        (0..5)
                            .map(|_| c.recv::<u32>(0, Tag::user(3)))
                            .collect::<Vec<_>>()
                    }
                });
            // The payload stream is intact and in order...
            assert_eq!(out[1].result, (0..5).collect::<Vec<_>>());
            // ...and the receiver discarded the racing copies it saw: all 5
            // reordered ghosts arrive ahead of their real copy; trailing
            // duplicates of the final message linger undisturbed.
            assert!(out[1].stats.redeliveries >= 5);
            assert_eq!(out[1].stats.messages_received, 5);
        }

        #[test]
        fn fault_schedule_is_deterministic() {
            let run = || {
                Cluster::new(3, CostModel::default_cluster())
                    .with_fault_injector(Arc::new(DropOnce))
                    .run(|c| {
                        let n = c.size();
                        let me = c.rank();
                        for round in 0..3u32 {
                            c.send((me + 1) % n, Tag::user(round), vec![0u8; 256]);
                            let _: Vec<u8> = c.recv((me + n - 1) % n, Tag::user(round));
                        }
                        c.now()
                    })
                    .iter()
                    .map(|o| (o.result, o.stats.retries, o.stats.redeliveries))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(), run(), "fault schedule must be replayable");
        }
    }
}
