//! The per-rank communicator handle.
//!
//! A [`Comm`] is what a rank's closure receives from [`crate::Cluster`]:
//! its identity (`rank`, `size`), typed point-to-point messaging, the
//! virtual clock, and accounting. Collectives live in
//! [`crate::collectives`] as inherent methods implemented over these
//! primitives.
//!
//! Every payload type must implement [`Wire`]; the cost-model byte size of
//! a message is derived from the payload itself (`Wire::wire_bytes`) at the
//! single point where it enters the fabric — call sites never supply byte
//! counts, so accounting cannot drift from the data.

use std::cell::RefCell;
use std::sync::Arc;

use mnd_wire::Wire;

use crate::cost::CostModel;
use crate::mailbox::{Envelope, Mailbox};
use crate::stats::RankStats;

/// Message tag. User code uses [`Tag::user`]; the collectives reserve the
/// upper tag space so they can never collide with application traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(pub(crate) u32);

impl Tag {
    const COLLECTIVE_BASE: u32 = 0x8000_0000;

    /// A user-space tag (`id < 2^31`; the upper half is reserved for the
    /// collectives in [`crate::collectives`]).
    pub const fn user(id: u32) -> Tag {
        assert!(id < Self::COLLECTIVE_BASE, "user tags must be < 2^31");
        Tag(id)
    }

    /// The raw tag id (collective tags keep their high bit set).
    pub const fn id(self) -> u32 {
        self.0
    }

    /// Whether this tag belongs to the reserved collective space.
    pub const fn is_collective(self) -> bool {
        self.0 & Self::COLLECTIVE_BASE != 0
    }
}

/// Shared (read-only) cluster state.
pub(crate) struct Fabric {
    pub mailboxes: Vec<Mailbox>,
    pub cost: CostModel,
}

/// One rank's state: identity, clock, statistics.
pub struct Comm {
    rank: usize,
    size: usize,
    fabric: Arc<Fabric>,
    clock: RefCell<f64>,
    stats: RefCell<RankStats>,
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, fabric: Arc<Fabric>) -> Self {
        Comm {
            rank,
            size,
            fabric,
            clock: RefCell::new(0.0),
            stats: RefCell::new(RankStats::default()),
        }
    }

    /// This rank's id in `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The cluster's cost model.
    #[inline]
    pub fn cost_model(&self) -> CostModel {
        self.fabric.cost
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> f64 {
        *self.clock.borrow()
    }

    /// Snapshot of the accumulated statistics.
    #[inline]
    pub fn stats(&self) -> RankStats {
        self.stats.borrow().clone()
    }

    /// Advances the clock by `seconds` of modelled computation.
    pub fn compute(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative compute time");
        *self.clock.borrow_mut() += seconds;
        self.stats.borrow_mut().compute_time += seconds;
    }

    /// Advances the clock by `seconds` booked as *communication* — for
    /// modelled messaging-stack overheads (serialisation, envelopes) that
    /// are not captured by the per-payload cost model.
    pub fn charge_comm(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0, "negative comm time");
        *self.clock.borrow_mut() += seconds;
        self.stats.borrow_mut().comm_time += seconds;
    }

    /// Sends `value` to `dst`. The payload size charged to the cost model
    /// and to [`RankStats`] is `value.wire_bytes()`.
    ///
    /// The sender's clock advances by the send busy time; the message's
    /// arrival time at `dst` is `now + latency + bytes/bandwidth`.
    ///
    /// # Panics
    ///
    /// If `dst` is out of range or equal to this rank (use a local variable
    /// instead of a self-send).
    pub fn send<T: Wire>(&self, dst: usize, tag: Tag, value: T) {
        assert!(dst < self.size, "send to rank {dst} of {}", self.size);
        assert_ne!(
            dst, self.rank,
            "self-send unsupported (use a local variable)"
        );
        let bytes = value.wire_bytes();
        let cost = &self.fabric.cost;
        let depart = self.now();
        let busy = cost.send_busy(bytes);
        *self.clock.borrow_mut() += busy;
        {
            let mut s = self.stats.borrow_mut();
            s.comm_time += busy;
            s.record_send(tag, bytes);
        }
        let arrival = depart + cost.transit(bytes);
        self.fabric.mailboxes[dst].deposit(
            self.rank,
            tag,
            Envelope {
                payload: Box::new(value),
                arrival,
                bytes,
            },
        );
    }

    /// Receives the next message from `(src, tag)`, blocking until it is
    /// available. The virtual clock advances to at least the message's
    /// arrival time (the wait is booked as communication), plus the
    /// receiver overhead.
    ///
    /// # Panics
    ///
    /// If the payload's type is not `T` (datatype mismatch), if `src` is
    /// out of range or equal to this rank, or — after a generous wall-clock
    /// timeout — if the message never arrives (distributed deadlock).
    pub fn recv<T: Send + 'static>(&self, src: usize, tag: Tag) -> T {
        assert!(src < self.size, "recv from rank {src} of {}", self.size);
        assert_ne!(src, self.rank, "self-recv unsupported");
        let env = self.fabric.mailboxes[self.rank].take(src, tag, self.rank);
        let cost = &self.fabric.cost;
        {
            let mut clock = self.clock.borrow_mut();
            let mut s = self.stats.borrow_mut();
            let before = *clock;
            let ready = env.arrival.max(before);
            *clock = ready + cost.recv_busy();
            s.comm_time += *clock - before;
            s.record_recv(tag, env.bytes);
        }
        *env.payload.downcast::<T>().unwrap_or_else(|_| {
            panic!(
                "rank {}: type mismatch receiving from rank {src} tag {tag:?} (expected {})",
                self.rank,
                std::any::type_name::<T>()
            )
        })
    }

    /// Sends to `dst` and receives from `src` — the deadlock-free pairwise
    /// exchange used by ring steps (send is non-blocking in this model, so
    /// ordering is safe; the helper exists for readability).
    pub fn send_recv<T: Wire, U: Send + 'static>(
        &self,
        dst: usize,
        send_tag: Tag,
        value: T,
        src: usize,
        recv_tag: Tag,
    ) -> U {
        self.send(dst, send_tag, value);
        self.recv(src, recv_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    #[test]
    fn clock_advances_with_compute() {
        let out = Cluster::new(1, CostModel::free()).run(|c| {
            c.compute(2.5);
            c.now()
        });
        assert_eq!(out[0].result, 2.5);
        assert_eq!(out[0].stats.compute_time, 2.5);
    }

    #[test]
    fn message_bytes_derive_from_payload() {
        let cost = CostModel {
            latency: 1e-3,
            bandwidth: 1e6,
            overhead: 0.0,
            byte_scale: 1.0,
        };
        let out = Cluster::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.send(1, Tag::user(0), vec![7u32; 250]); // 1000 wire bytes
                0u32
            } else {
                let v: Vec<u32> = c.recv(0, Tag::user(0));
                assert_eq!(v.len(), 250);
                // Arrival = 0 + 1ms latency + 1ms serialisation.
                assert!((c.now() - 2e-3).abs() < 1e-9, "clock {}", c.now());
                v[0]
            }
        });
        assert_eq!(out[1].result, 7);
        assert_eq!(out[0].stats.bytes_sent, 1000);
        assert_eq!(out[0].stats.by_tag[&Tag::user(0)].bytes_sent, 1000);
        assert_eq!(out[1].stats.messages_received, 1);
        assert_eq!(out[1].stats.by_tag[&Tag::user(0)].bytes_received, 1000);
        assert!(out[1].stats.comm_time > 0.0);
    }

    #[test]
    fn receiver_waits_for_late_sender() {
        let cost = CostModel::free();
        let out = Cluster::new(2, cost).run(|c| {
            if c.rank() == 0 {
                c.compute(5.0); // sender is busy for 5 virtual seconds
                c.send(1, Tag::user(0), 1u8);
                c.now()
            } else {
                let _: u8 = c.recv(0, Tag::user(0));
                c.now() // must be >= 5.0 despite doing nothing itself
            }
        });
        assert!(out[1].result >= 5.0);
        assert_eq!(out[1].stats.comm_time, 5.0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        Cluster::new(2, CostModel::free()).run(|c| {
            if c.rank() == 0 {
                c.send(1, Tag::user(0), 1u8);
            } else {
                let _: u64 = c.recv(0, Tag::user(0));
            }
        });
    }

    #[test]
    fn non_overtaking_same_key() {
        let out = Cluster::new(2, CostModel::free()).run(|c| {
            if c.rank() == 0 {
                for i in 0..10u32 {
                    c.send(1, Tag::user(3), i);
                }
                vec![]
            } else {
                (0..10)
                    .map(|_| c.recv::<u32>(0, Tag::user(3)))
                    .collect::<Vec<_>>()
            }
        });
        assert_eq!(out[1].result, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn tag_space_split() {
        assert_eq!(Tag::user(7).id(), 7);
        assert!(!Tag::user(7).is_collective());
    }
}
