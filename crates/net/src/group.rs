//! Processor groups for the hierarchical merge (§3.4).
//!
//! At every merging level the *active* processors are partitioned into
//! groups of (at most) `group_size` consecutive members. Within a group the
//! ring exchange sends to the left neighbour and receives from the right
//! (the paper's orientation), and the group's first member is its leader.

/// An ordered group of rank ids (global ranks, ascending).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// Creates a group from ascending member ranks.
    pub fn new(members: Vec<usize>) -> Self {
        assert!(!members.is_empty(), "empty group");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must ascend"
        );
        Group { members }
    }

    /// Partitions `active` (ascending rank ids) into groups of at most
    /// `group_size`. The last group may be smaller.
    pub fn partition(active: &[usize], group_size: usize) -> Vec<Group> {
        assert!(group_size >= 1);
        active
            .chunks(group_size)
            .map(|c| Group::new(c.to_vec()))
            .collect()
    }

    /// Members in ascending order.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True for singleton groups (no exchange possible).
    pub fn is_singleton(&self) -> bool {
        self.members.len() == 1
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The group leader (first member) — where the group's components merge
    /// once the exchange phase converges.
    pub fn leader(&self) -> usize {
        self.members[0]
    }

    /// Position of `rank` within the group, if a member.
    pub fn position(&self, rank: usize) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }

    /// Ring left neighbour of `rank`: the member it **sends** to
    /// (`P_(i-1) mod g` in the paper).
    pub fn left_of(&self, rank: usize) -> usize {
        let i = self.position(rank).expect("rank not in group");
        self.members[(i + self.len() - 1) % self.len()]
    }

    /// Ring right neighbour of `rank`: the member it **receives** from
    /// (`P_(i+1) mod g`).
    pub fn right_of(&self, rank: usize) -> usize {
        let i = self.position(rank).expect("rank not in group");
        self.members[(i + 1) % self.len()]
    }

    /// The group containing `rank`, if any.
    pub fn find(groups: &[Group], rank: usize) -> Option<&Group> {
        groups.iter().find(|g| g.position(rank).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_chunks_with_ragged_tail() {
        let active: Vec<usize> = (0..10).collect();
        let gs = Group::partition(&active, 4);
        assert_eq!(gs.len(), 3);
        assert_eq!(gs[0].members(), &[0, 1, 2, 3]);
        assert_eq!(gs[2].members(), &[8, 9]);
        assert_eq!(gs[1].leader(), 4);
    }

    #[test]
    fn ring_neighbours_wrap() {
        let g = Group::new(vec![2, 5, 7, 11]);
        assert_eq!(g.left_of(2), 11);
        assert_eq!(g.right_of(2), 5);
        assert_eq!(g.left_of(11), 7);
        assert_eq!(g.right_of(11), 2);
    }

    #[test]
    fn singleton_ring_is_self() {
        let g = Group::new(vec![3]);
        assert!(g.is_singleton());
        assert_eq!(g.left_of(3), 3);
        assert_eq!(g.right_of(3), 3);
    }

    #[test]
    fn find_locates_member() {
        let gs = Group::partition(&[0, 1, 2, 3, 4, 5], 2);
        assert_eq!(Group::find(&gs, 4).unwrap().leader(), 4);
        assert!(Group::find(&gs, 9).is_none());
    }

    #[test]
    #[should_panic(expected = "ascend")]
    fn rejects_unordered_members() {
        Group::new(vec![3, 1]);
    }
}
