//! Property tests of the collectives: against reference folds, and the
//! virtual-clock invariants every collective must preserve.

use std::sync::Arc;

use mnd_net::fault::{FaultInjector, SendFate};
use mnd_net::{Cluster, CostModel, ExchangeMode, Group, Tag, Wire};
use proptest::prelude::*;

/// Arbitrary bucket shapes for the all-to-all equivalence property:
/// `lens[me][d]` items from rank `me` to rank `d`, with degenerate shapes
/// (all-empty, single hot destination) forced in by the generator knobs.
fn shaped_buckets(me: usize, p: usize, lens: &[Vec<usize>], hot: Option<usize>) -> Vec<Vec<u32>> {
    (0..p)
        .map(|d| {
            let len = match hot {
                // One hot destination: everyone ships there, nowhere else.
                Some(h) => {
                    if d == h % p {
                        lens[me][d]
                    } else {
                        0
                    }
                }
                None => lens[me][d],
            };
            (0..len as u32)
                .map(|i| (me * 1000 + d * 100) as u32 + i)
                .collect()
        })
        .collect()
}

/// Drops the first copy of every stream's first and fourth transmissions
/// and duplicates every fifth — deterministic, so the faulted run is
/// reproducible, and seq 0 guarantees at least one fault per stream.
struct DropAndDupe;
impl FaultInjector for DropAndDupe {
    fn fate(&self, _src: usize, _dst: usize, _tag: Tag, seq: u64, _bytes: u64) -> SendFate {
        SendFate {
            retries: u32::from(seq.is_multiple_of(3)),
            duplicates: u32::from(seq % 5 == 4),
            ..SendFate::CLEAN
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sparse, dense, and every phased schedule (with and without a codec)
    /// route byte-identical buckets for arbitrary shapes — including
    /// all-empty exchanges and a single hot destination — and the sparse
    /// path delivers the same bytes under a fault injector as fault-free.
    #[test]
    fn every_exchange_schedule_routes_identically(
        p in 2usize..6,
        lens in proptest::collection::vec(proptest::collection::vec(0usize..6, 6..7), 6..7),
        hot_sel in 0usize..12,
        all_empty in proptest::bool::ANY,
    ) {
        // hot_sel < 6 selects a single hot destination; >= 6 disables it.
        let hot = (hot_sel < 6).then_some(hot_sel);
        let lens = if all_empty {
            vec![vec![0usize; 6]; 6]
        } else {
            lens
        };
        let mk = {
            let lens = lens.clone();
            move |me: usize| shaped_buckets(me, p, &lens, hot)
        };
        let oracle = {
            let mk = mk.clone();
            Cluster::new(p, CostModel::free())
                .run(move |c| c.alltoallv_dense(mk(c.rank())))
        };
        let sparse = {
            let mk = mk.clone();
            Cluster::new(p, CostModel::free()).run(move |c| c.alltoallv(mk(c.rank())))
        };
        for (d, s) in oracle.iter().zip(&sparse) {
            prop_assert_eq!(&d.result, &s.result);
        }
        for phase_size in [1usize, 3, 64] {
            for mode in [ExchangeMode::Dense, ExchangeMode::Sparse] {
                let mk2 = mk.clone();
                let phased = Cluster::new(p, CostModel::free()).run(move |c| {
                    c.alltoallv_phased_with(mk2(c.rank()), phase_size, mode)
                });
                for (d, s) in oracle.iter().zip(&phased) {
                    prop_assert_eq!(&d.result, &s.result, "phase {} mode {:?}", phase_size, mode);
                }
            }
            let mk2 = mk.clone();
            let enc = Cluster::new(p, CostModel::free()).run(move |c| {
                c.alltoallv_phased_enc(
                    mk2(c.rank()),
                    phase_size,
                    ExchangeMode::Sparse,
                    mnd_wire::PackedIds::encode,
                    mnd_wire::PackedIds::into_ids,
                )
            });
            for (d, s) in oracle.iter().zip(&enc) {
                prop_assert_eq!(&d.result, &s.result, "enc phase {}", phase_size);
            }
        }
        // Chaos: drops + duplicates on the fabric must not change what the
        // sparse schedule delivers, only the retry/redelivery counters.
        let mk2 = mk.clone();
        let chaotic = Cluster::new(p, CostModel::default_cluster())
            .with_fault_injector(Arc::new(DropAndDupe))
            .run(move |c| {
                let got = c.alltoallv(mk2(c.rank()));
                let stats = c.stats();
                (got, stats.messages_sent, stats.retries + stats.redeliveries)
            });
        let clean = Cluster::new(p, CostModel::default_cluster()).run(move |c| {
            let got = c.alltoallv(mk(c.rank()));
            (got, c.stats().messages_sent)
        });
        for (cl, ch) in clean.iter().zip(&chaotic) {
            prop_assert_eq!(&cl.result.0, &ch.result.0, "faults changed routing");
            prop_assert_eq!(cl.result.1, ch.result.1, "faults changed the logical message count");
        }
        let faults: u64 = chaotic.iter().map(|o| o.result.2).sum();
        let msgs: u64 = clean.iter().map(|o| o.result.1).sum();
        if msgs >= 1 {
            prop_assert!(faults > 0, "injector never fired over {} messages", msgs);
        }
    }

    #[test]
    fn allreduce_equals_fold(values in proptest::collection::vec(0u64..1000, 1..9)) {
        let p = values.len();
        let vals = values.clone();
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            c.allreduce_u64(vals[c.rank()], |a, b| a + b)
        });
        let expect: u64 = values.iter().sum();
        for o in &out {
            prop_assert_eq!(o.result, expect);
        }
    }

    #[test]
    fn allreduce_max_and_min_style_ops(values in proptest::collection::vec(0u64..10_000, 1..8)) {
        let p = values.len();
        let vals = values.clone();
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            (
                c.allreduce_u64(vals[c.rank()], u64::max),
                c.allreduce_u64(vals[c.rank()], u64::min),
            )
        });
        let mx = *values.iter().max().unwrap();
        let mn = *values.iter().min().unwrap();
        for o in &out {
            prop_assert_eq!(o.result, (mx, mn));
        }
    }

    #[test]
    fn allgather_returns_everything_in_order(
        lens in proptest::collection::vec(0usize..6, 1..7),
    ) {
        let p = lens.len();
        let lens2 = lens.clone();
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            let mine: Vec<u32> = (0..lens2[c.rank()] as u32).map(|i| c.rank() as u32 * 100 + i).collect();
            c.allgather_vec(mine)
        });
        for o in &out {
            prop_assert_eq!(o.result.len(), p);
            for (src, bucket) in o.result.iter().enumerate() {
                let expect: Vec<u32> = (0..lens[src] as u32).map(|i| src as u32 * 100 + i).collect();
                prop_assert_eq!(bucket, &expect);
            }
        }
    }

    #[test]
    fn clocks_never_go_backwards(
        p in 2usize..6,
        computes in proptest::collection::vec(0u64..100, 2..10),
    ) {
        let computes2 = computes.clone();
        let out = Cluster::new(p, CostModel::default_cluster()).run(move |c| {
            let mut last = c.now();
            let mut monotone = true;
            for (i, &dt) in computes2.iter().enumerate() {
                c.compute(dt as f64 * 1e-6);
                c.barrier();
                if c.rank() == 0 && i.is_multiple_of(2) {
                    c.send(1 % c.size(), Tag::user(9), vec![0u8; dt as usize]);
                } else if c.rank() == 1 % c.size() && i.is_multiple_of(2) {
                    let _: Vec<u8> = c.recv(0, Tag::user(9));
                }
                let now = c.now();
                monotone &= now >= last;
                last = now;
            }
            monotone
        });
        for o in &out {
            prop_assert!(o.result, "virtual clock went backwards");
        }
    }

    #[test]
    fn broadcast_any_root_any_size(p in 1usize..8, root_seed in 0usize..100, payload in 0u64..1000) {
        let root = root_seed % p;
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            c.broadcast(root, (c.rank() == root).then_some(payload))
        });
        for o in &out {
            prop_assert_eq!(o.result, payload);
        }
    }

    #[test]
    fn stats_bytes_equal_sum_of_wire_bytes(
        scalars in proptest::collection::vec(0u64..1_000_000, 1..6),
        lens in proptest::collection::vec(0usize..40, 1..6),
        pairs in proptest::collection::vec((0u32..1000, 0u64..1000), 0..8),
    ) {
        // Every rank sends a mix of payload shapes to its right neighbour
        // and tallies `Wire::wire_bytes` at each call site; the totals in
        // RankStats (and the per-tag breakdown) must match exactly — no
        // send path may charge anything else.
        let out = Cluster::new(3, CostModel::default_cluster()).run(move |c| {
            let right = (c.rank() + 1) % 3;
            let left = (c.rank() + 2) % 3;
            let mut expected = 0u64;
            let mut send = |_tag: Tag, v: &dyn Wire| expected += v.wire_bytes();
            for &s in &scalars {
                send(Tag::user(0), &s);
                c.send(right, Tag::user(0), s);
            }
            for &n in &lens {
                let v: Vec<u32> = (0..n as u32).collect();
                send(Tag::user(1), &v);
                c.send(right, Tag::user(1), v);
            }
            send(Tag::user(2), &pairs.clone());
            c.send(right, Tag::user(2), pairs.clone());
            let nested: Vec<Vec<u64>> = lens.iter().map(|&n| vec![7u64; n]).collect();
            send(Tag::user(3), &nested);
            c.send(right, Tag::user(3), nested);
            // Drain the matching receives so the run terminates cleanly.
            for _ in &scalars {
                let _: u64 = c.recv(left, Tag::user(0));
            }
            for _ in &lens {
                let _: Vec<u32> = c.recv(left, Tag::user(1));
            }
            let _: Vec<(u32, u64)> = c.recv(left, Tag::user(2));
            let _: Vec<Vec<u64>> = c.recv(left, Tag::user(3));
            (expected, c.stats())
        });
        for o in &out {
            let (expected, stats) = &o.result;
            prop_assert_eq!(stats.bytes_sent, *expected);
            // Symmetric ring: every rank also receives exactly one copy of
            // each shape, so received bytes match the same sum.
            prop_assert_eq!(stats.bytes_received, *expected);
            let tag_sent: u64 = stats.by_tag.values().map(|t| t.bytes_sent).sum();
            let tag_msgs: u64 = stats.by_tag.values().map(|t| t.messages_sent).sum();
            prop_assert_eq!(tag_sent, stats.bytes_sent);
            prop_assert_eq!(tag_msgs, stats.messages_sent);
        }
    }

    #[test]
    fn group_partition_is_a_partition(active_len in 1usize..40, gsize in 1usize..10) {
        let active: Vec<usize> = (0..active_len).map(|i| i * 3).collect();
        let groups = Group::partition(&active, gsize);
        let flat: Vec<usize> = groups.iter().flat_map(|g| g.members().to_vec()).collect();
        prop_assert_eq!(flat, active);
        for g in &groups {
            prop_assert!(g.len() <= gsize);
            // Ring closes: following right_of len times returns home.
            let mut cur = g.leader();
            for _ in 0..g.len() {
                cur = g.right_of(cur);
            }
            prop_assert_eq!(cur, g.leader());
        }
    }
}

#[test]
fn stats_account_every_byte() {
    // Sum of bytes_sent == sum of bytes_received over any closed exchange.
    let out = Cluster::new(4, CostModel::default_cluster()).run(|c| {
        let buckets: Vec<Vec<u64>> = (0..4).map(|d| vec![d as u64; c.rank() + 1]).collect();
        let _ = c.alltoallv(buckets);
        c.barrier();
        c.stats()
    });
    let sent: u64 = out.iter().map(|o| o.result.bytes_sent).sum();
    let recv: u64 = out.iter().map(|o| o.result.bytes_received).sum();
    assert_eq!(sent, recv);
}

#[test]
fn makespan_dominates_all_clocks() {
    let out = Cluster::new(5, CostModel::default_cluster()).run(|c| {
        c.compute(c.rank() as f64 * 0.01);
        c.barrier();
        c.now()
    });
    let makespan = Cluster::makespan(&out);
    for o in &out {
        assert!(o.final_clock <= makespan + 1e-12);
    }
}
