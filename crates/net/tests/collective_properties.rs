//! Property tests of the collectives: against reference folds, and the
//! virtual-clock invariants every collective must preserve.

use mnd_net::{Cluster, CostModel, Group, Tag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_fold(values in proptest::collection::vec(0u64..1000, 1..9)) {
        let p = values.len();
        let vals = values.clone();
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            c.allreduce_u64(vals[c.rank()], |a, b| a + b)
        });
        let expect: u64 = values.iter().sum();
        for o in &out {
            prop_assert_eq!(o.result, expect);
        }
    }

    #[test]
    fn allreduce_max_and_min_style_ops(values in proptest::collection::vec(0u64..10_000, 1..8)) {
        let p = values.len();
        let vals = values.clone();
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            (
                c.allreduce_u64(vals[c.rank()], u64::max),
                c.allreduce_u64(vals[c.rank()], u64::min),
            )
        });
        let mx = *values.iter().max().unwrap();
        let mn = *values.iter().min().unwrap();
        for o in &out {
            prop_assert_eq!(o.result, (mx, mn));
        }
    }

    #[test]
    fn allgather_returns_everything_in_order(
        lens in proptest::collection::vec(0usize..6, 1..7),
    ) {
        let p = lens.len();
        let lens2 = lens.clone();
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            let mine: Vec<u32> = (0..lens2[c.rank()] as u32).map(|i| c.rank() as u32 * 100 + i).collect();
            c.allgather_vec(mine)
        });
        for o in &out {
            prop_assert_eq!(o.result.len(), p);
            for (src, bucket) in o.result.iter().enumerate() {
                let expect: Vec<u32> = (0..lens[src] as u32).map(|i| src as u32 * 100 + i).collect();
                prop_assert_eq!(bucket, &expect);
            }
        }
    }

    #[test]
    fn clocks_never_go_backwards(
        p in 2usize..6,
        computes in proptest::collection::vec(0u64..100, 2..10),
    ) {
        let computes2 = computes.clone();
        let out = Cluster::new(p, CostModel::default_cluster()).run(move |c| {
            let mut last = c.now();
            let mut monotone = true;
            for (i, &dt) in computes2.iter().enumerate() {
                c.compute(dt as f64 * 1e-6);
                c.barrier();
                if c.rank() == 0 && i.is_multiple_of(2) {
                    c.send_vec(1 % c.size(), Tag::user(9), vec![0u8; dt as usize]);
                } else if c.rank() == 1 % c.size() && i.is_multiple_of(2) {
                    let _: Vec<u8> = c.recv(0, Tag::user(9));
                }
                let now = c.now();
                monotone &= now >= last;
                last = now;
            }
            monotone
        });
        for o in &out {
            prop_assert!(o.result, "virtual clock went backwards");
        }
    }

    #[test]
    fn broadcast_any_root_any_size(p in 1usize..8, root_seed in 0usize..100, payload in 0u64..1000) {
        let root = root_seed % p;
        let out = Cluster::new(p, CostModel::free()).run(move |c| {
            c.broadcast(root, (c.rank() == root).then_some(payload))
        });
        for o in &out {
            prop_assert_eq!(o.result, payload);
        }
    }

    #[test]
    fn group_partition_is_a_partition(active_len in 1usize..40, gsize in 1usize..10) {
        let active: Vec<usize> = (0..active_len).map(|i| i * 3).collect();
        let groups = Group::partition(&active, gsize);
        let flat: Vec<usize> = groups.iter().flat_map(|g| g.members().to_vec()).collect();
        prop_assert_eq!(flat, active);
        for g in &groups {
            prop_assert!(g.len() <= gsize);
            // Ring closes: following right_of len times returns home.
            let mut cur = g.leader();
            for _ in 0..g.len() {
                cur = g.right_of(cur);
            }
            prop_assert_eq!(cur, g.leader());
        }
    }
}

#[test]
fn stats_account_every_byte() {
    // Sum of bytes_sent == sum of bytes_received over any closed exchange.
    let out = Cluster::new(4, CostModel::default_cluster()).run(|c| {
        let buckets: Vec<Vec<u64>> = (0..4).map(|d| vec![d as u64; c.rank() + 1]).collect();
        let _ = c.alltoallv(buckets);
        c.barrier();
        c.stats()
    });
    let sent: u64 = out.iter().map(|o| o.result.bytes_sent).sum();
    let recv: u64 = out.iter().map(|o| o.result.bytes_received).sum();
    assert_eq!(sent, recv);
}

#[test]
fn makespan_dominates_all_clocks() {
    let out = Cluster::new(5, CostModel::default_cluster()).run(|c| {
        c.compute(c.rank() as f64 * 0.01);
        c.barrier();
        c.now()
    });
    let makespan = Cluster::makespan(&out);
    for o in &out {
        assert!(o.final_clock <= makespan + 1e-12);
    }
}
