//! Minimal fixed-width table printing and CSV export for the repro
//! binary.

/// Prints a header + rows as an aligned ASCII table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>w$} | ", c, w = widths[i]));
        }
        s
    };
    println!("{}", line(header.iter().map(|s| s.to_string()).collect()));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(sep));
    for row in rows {
        println!("{}", line(row.clone()));
    }
}

/// Writes rows as a CSV file (quoting is unnecessary: all cell content is
/// numeric or identifier-like). Returns the path written.
pub fn write_csv(
    dir: &std::path::Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(&path, out)?;
    Ok(path)
}

/// Formats seconds with 2 decimals (the paper's tables use seconds).
pub fn secs(t: f64) -> String {
    format!("{t:.2}")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(pct(0.42), "42%");
    }

    #[test]
    fn csv_writes_and_round_trips() {
        let dir = std::env::temp_dir().join("mnd_csv_test");
        let p = write_csv(
            &dir,
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "x".into()], vec!["2".into(), "y".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&p).unwrap();
        assert_eq!(content, "a,b\n1,x\n2,y\n");
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn table_prints_without_panicking() {
        print_table(
            "demo",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
