//! # mnd-bench — the reproduction harness
//!
//! One function per table/figure of the paper's evaluation (§5), each
//! returning structured rows that the `repro` binary prints. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured outcomes.
//!
//! All experiments run the *real* algorithms over the simulated cluster;
//! reported times are simulated seconds at paper scale (the `sim_scale`
//! mechanism described in DESIGN.md). Every distributed run's MSF is
//! checked against the Kruskal oracle before its timing is reported — a
//! row from this harness is by construction a *correct* run.

pub mod experiments;
pub mod fmt;
pub mod trace;

pub use experiments::*;

/// Default scale divisor: stand-in graphs are `1/SCALE` of the paper's
/// sizes (uk-2007 → ~3.2M edges), and simulated costs are scaled back up
/// by the same factor.
pub const DEFAULT_SCALE: u64 = 2048;
