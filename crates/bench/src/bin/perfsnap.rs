//! `perfsnap` — writes a machine-readable perf snapshot of the build.
//!
//! ```text
//! perfsnap [PATH]    # default BENCH_9.json
//! ```
//!
//! The snapshot records (a) the measured kernel-policy crossover table,
//! (b) the seq-vs-par kernel sweep up to a million-plus-edge holding,
//! (c) wall-clock plus simulated times for verified end-to-end runs —
//! the D&C driver at two node counts, every registered engine
//! (`mnd::engines`) at 4 nodes, the serving plane's per-tenant p95
//! latencies under the mixed serve-sweep workload (`serve:<tenant>`
//! keys), and every engine over the geometric presets
//! (`emst:<preset>:<engine>` keys, the bounded-degree regime) — and
//! (d) the comm-sweep traffic table (dense vs sparse exchange,
//! compression, filter-Boruvka), so the bench trajectory across PRs
//! lives in versioned JSON, not just in criterion's target directory.
//! JSON is assembled by hand: every value is a number or a fixed
//! identifier, no escaping needed.

use std::fmt::Write as _;
use std::time::Instant;

use mnd_bench::{
    comm_sweep, emst_sweep, engines_for, kernel_sweep, run_mnd, serve_sweep, ExpContext,
    SWEEP_SIZES,
};
use mnd_device::{calibrate_kernel_policy, variant_name, NodePlatform};
use mnd_graph::presets::Preset;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_9.json".into());
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cal = calibrate_kernel_policy(42);
    let sweep = kernel_sweep(42, &SWEEP_SIZES, &cal.policy);

    // End-to-end: verified runs at the default scale divisor, under the
    // policy just calibrated (results are policy-invariant; wall-clock is
    // what the snapshot tracks).
    let ctx = ExpContext {
        kernel_policy: cal.policy,
        ..Default::default()
    };
    let el = ctx.graph(Preset::Arabic2005);
    let mut e2e = Vec::new();
    for nodes in [4usize, 16] {
        let t = Instant::now();
        let r = run_mnd(&ctx, &el, nodes, NodePlatform::amd_cluster(), ctx.hypar());
        e2e.push((
            "arabic-2005".to_string(),
            nodes,
            t.elapsed().as_millis() as u64,
            r.total_time,
        ));
    }
    // One row per registered engine (graph key carries the engine name so
    // bench_check's (graph, nodes) join stays unique): gates sim-time
    // neutrality of the shared recovery fabric across all three engines.
    for engine in engines_for(&ctx, 4) {
        let t = Instant::now();
        let r = engine.run(&el);
        e2e.push((
            format!("arabic-2005:{}", engine.name()),
            4,
            t.elapsed().as_millis() as u64,
            r.total_time,
        ));
    }
    // Serving plane: per-tenant p95 latencies from the serve sweep's
    // default-engine incremental plane (`serve:<tenant>` keys) — the
    // simulated p95 is deterministic, so bench_check gates the cache +
    // incremental-MSF serving path like any engine row. (The sweep's
    // oracle checks run here too; wall-clock is the whole sweep's.)
    let t = Instant::now();
    let serve = serve_sweep(&ctx, 4);
    let serve_wall = t.elapsed().as_millis() as u64;
    for row in serve
        .tenants
        .iter()
        .filter(|r| r.plane == "mnd-mst/incremental")
    {
        e2e.push((format!("serve:{}", row.tenant), 4, serve_wall, row.p95));
    }
    // Geometric regime: every engine over every geo preset
    // (`emst:<preset>:<engine>` keys). The sweep brute-force-verifies
    // the small-n EMST oracle and cross-checks all engines before any
    // row lands, so gated sim times are times of *correct* runs here
    // too. (Wall-clock is the whole sweep's.)
    let t = Instant::now();
    let emst = emst_sweep(&ctx, 4);
    let emst_wall = t.elapsed().as_millis() as u64;
    for row in &emst.rows {
        e2e.push((
            format!("emst:{}:{}", row.preset, row.engine),
            4,
            emst_wall,
            row.exe,
        ));
    }

    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 10,");
    let _ = writeln!(j, "  \"host_threads\": {host_threads},");
    let _ = writeln!(
        j,
        "  \"policy\": {{\"par_threshold\": {}, \"reduce_par_threshold\": {}, \"count_par_threshold\": {}, \"relabel_par_threshold\": {}, \"chunk_rows\": {}, \"election_variant\": \"{}\", \"count_variant\": \"{}\"}},",
        cal.policy.par_threshold,
        cal.policy.reduce_par_threshold,
        cal.policy.count_par_threshold,
        cal.policy.relabel_par_threshold,
        cal.policy.chunk_rows,
        variant_name(cal.policy.election_variant),
        variant_name(cal.policy.count_variant)
    );
    j.push_str("  \"crossover\": [\n");
    for (i, row) in cal.table.iter().enumerate() {
        let pars: Vec<String> = row
            .par_ns
            .iter()
            .map(|(chunk, ns)| format!("{{\"chunk\": {chunk}, \"ns\": {ns}}}"))
            .collect();
        let lf = row
            .lockfree_ns
            .map_or("null".to_string(), |ns| ns.to_string());
        let _ = write!(
            j,
            "    {{\"rows\": {}, \"seq_ns\": {}, \"lockfree_ns\": {}, \"par\": [{}]}}",
            row.rows,
            row.seq_ns,
            lf,
            pars.join(", ")
        );
        j.push_str(if i + 1 < cal.table.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n  \"kernel_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"rows\": {}, \"chunk\": {}, \"seq_ns\": {}, \"par_ns\": {}, \"speedup\": {:.3}, \"selected\": {}}}",
            r.kernel, r.variant, r.rows, r.chunk, r.seq_ns, r.par_ns, r.speedup(), r.selected
        );
        j.push_str(if i + 1 < sweep.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ],\n  \"end_to_end\": [\n");
    for (i, (graph, nodes, wall_ms, sim_s)) in e2e.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"graph\": \"{graph}\", \"nodes\": {nodes}, \"wall_ms\": {wall_ms}, \"sim_time_s\": {sim_s:.3}}}"
        );
        j.push_str(if i + 1 < e2e.len() { ",\n" } else { "\n" });
    }
    // Comm sweep (DESIGN.md §8): every row is oracle-verified, so the gate
    // in bench_check.sh can hold sparse message counts at <= dense without
    // re-running the experiment.
    let comm = comm_sweep(&ctx, 8);
    j.push_str("  ],\n  \"comm_sweep\": [\n");
    for (i, r) in comm.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"preset\": \"{}\", \"variant\": \"{}\", \"messages\": {}, \"wire_mb\": {:.4}, \"payload_msgs\": {}, \"header_msgs\": {}, \"sim_time_s\": {:.3}}}",
            r.preset, r.variant, r.messages, r.wire_mb, r.payload_msgs, r.header_msgs, r.exe
        );
        j.push_str(if i + 1 < comm.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");

    std::fs::write(&path, &j).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("perf snapshot written to {path}");
}
