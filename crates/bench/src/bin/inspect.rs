//! `inspect` — per-run diagnostics: where a distributed MND-MST run spends
//! its simulated time.
//!
//! ```text
//! inspect <preset> [--scale N] [--nodes N] [--gpu] [--per-rank]
//! ```

use mnd_bench::*;
use mnd_device::NodePlatform;
use mnd_graph::presets::Preset;

fn main() {
    let mut name = String::from("arabic-2005");
    let mut scale = 2048u64;
    let mut nodes = 16usize;
    let mut gpu = false;
    let mut per_rank = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).expect("--scale N"),
            "--nodes" => nodes = it.next().and_then(|v| v.parse().ok()).expect("--nodes N"),
            "--gpu" => gpu = true,
            "--per-rank" => per_rank = true,
            other => name = other.to_string(),
        }
    }
    let Some(preset) = Preset::from_name(&name) else {
        eprintln!(
            "unknown preset {name:?}; one of: {}",
            Preset::ALL.map(|p| p.name()).join(" ")
        );
        std::process::exit(1);
    };
    let ctx = ExpContext {
        scale,
        seed: 42,
        ..Default::default()
    };
    let el = ctx.graph(preset);
    println!(
        "{name} @1/{scale}: V={} E={} cut@{nodes}={:.0}%",
        el.num_vertices(),
        el.len(),
        100.0 * mnd_graph::gen::cut_fraction(&el, nodes as u32)
    );
    let platform = if gpu {
        NodePlatform::cray_xc40(true)
    } else {
        NodePlatform::amd_cluster()
    };
    let r = run_mnd(&ctx, &el, nodes, platform, ctx.hypar());
    println!(
        "total={:.3}s comm(max)={:.3}s levels={} ring-rounds={} max-holding={}MB",
        r.total_time,
        r.comm_time,
        r.levels,
        r.exchange_rounds,
        r.max_holding_bytes >> 20
    );
    let pm = r.phase_max();
    println!(
        "phase max over ranks: indComp={:.3} merge={:.3} postProcess={:.3} comm={:.3}",
        pm.ind_comp, pm.merge, pm.post_process, pm.comm
    );
    if per_rank {
        for (i, (p, s)) in r.phases.iter().zip(&r.rank_stats).enumerate() {
            println!(
                "rank {i:>2}: indComp={:.3} merge={:.3} post={:.3} comm={:.3} sent={}KB msgs={}",
                p.ind_comp,
                p.merge,
                p.post_process,
                p.comm,
                s.bytes_sent >> 10,
                s.messages_sent
            );
        }
    }
    println!("result verified against Kruskal ✓");
}
