//! `repro` — regenerates every table and figure of the MND-MST paper.
//!
//! ```text
//! repro [--scale N] [--seed S] [--no-verify] [--nodes N] [--trace PATH] <experiment>...
//! repro all            # everything (slow)
//! repro table3 fig8    # selected experiments
//! repro --trace - chaos   # chaos sweep, JSONL events to stdout
//! repro chaos --seed-grid 7,11   # chaos sweep repeated per seed
//! ```
//!
//! Experiments: table2 table3 table4 fig4 fig5 fig6 fig7 fig8
//! ablation-group ablation-excp ablation-thresh calibration chaos
//! resilience checkpoint-sweep traffic engines serve-sweep comm-sweep
//! emst-sweep
//!
//! `--trace PATH` streams every phase sample and chaos event as JSON
//! lines to PATH (`-` = stdout) while the experiments run.

use mnd_bench::fmt::{pct, print_table, secs, write_csv};
use mnd_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ctx = ExpContext::default();
    let mut nranks = 16usize;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut seed_grid: Vec<u64> = Vec::new();
    let mut variant_filter: Option<String> = None;
    let mut experiments: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--variant" => {
                let v = it.next().expect("--variant seq|chunk-merge|lockfree");
                assert!(
                    matches!(v.as_str(), "seq" | "chunk-merge" | "lockfree"),
                    "--variant must be seq, chunk-merge or lockfree (got {v})"
                );
                variant_filter = Some(v);
            }
            "--csv" => {
                csv_dir = Some(it.next().expect("--csv DIR").into());
            }
            "--scale" => {
                ctx.scale = it
                    .next()
                    .expect("--scale N")
                    .parse()
                    .expect("numeric scale");
            }
            "--seed" => {
                ctx.seed = it.next().expect("--seed S").parse().expect("numeric seed");
            }
            "--seed-grid" => {
                seed_grid = it
                    .next()
                    .expect("--seed-grid S1,S2,...")
                    .split(',')
                    .map(|s| s.trim().parse().expect("numeric seed in --seed-grid"))
                    .collect();
            }
            "--nodes" => {
                nranks = it
                    .next()
                    .expect("--nodes N")
                    .parse()
                    .expect("numeric nodes");
            }
            "--no-verify" => ctx.verify = false,
            "--trace" => {
                let path = it.next().expect("--trace PATH");
                let trace = if path == "-" {
                    mnd_bench::trace::JsonlTrace::stdout()
                } else {
                    mnd_bench::trace::JsonlTrace::create(std::path::Path::new(&path))
                        .unwrap_or_else(|e| panic!("--trace {path}: {e}"))
                };
                ctx.observer = mnd_hypar::observe::ObserverHook::new(std::sync::Arc::new(trace));
            }
            "--help" | "-h" => {
                println!("usage: repro [--scale N] [--seed S] [--seed-grid S1,S2,...] [--nodes N] [--no-verify] [--csv DIR] [--trace PATH] <exp>...");
                println!("experiments: all table2 table3 table4 fig4 fig5 fig6 fig7 fig8");
                println!(
                    "             ablation-group ablation-excp ablation-thresh ablation-locality"
                );
                println!("             ablation-weights ablation-network calibration");
                println!("             kernel-sweep chaos resilience checkpoint-sweep traffic");
                println!("             engines serve-sweep comm-sweep emst-sweep");
                println!("--variant seq|chunk-merge|lockfree filters the kernel-sweep rows");
                println!(
                    "--trace PATH streams phase samples + chaos events as JSON lines (- = stdout)"
                );
                println!("--seed-grid S1,S2,... repeats the chaos/resilience sweeps once per seed");
                return;
            }
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".into());
    }
    let all = experiments.iter().any(|e| e == "all");
    let want = |name: &str| all || experiments.iter().any(|e| e == name);
    let emit = |csv_name: &str, title: &str, header: &[&str], rows: &[Vec<String>]| {
        print_table(title, header, rows);
        if let Some(dir) = &csv_dir {
            match write_csv(dir, csv_name, header, rows) {
                Ok(p) => println!("(csv: {})", p.display()),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
    };

    // Host-calibrated holding-plane crossovers, served from the on-disk
    // per-host cache after the first run (results are policy-invariant;
    // only host wall-clock changes).
    ctx.kernel_policy = mnd_device::calibrate_kernel_policy_cached(ctx.seed);

    println!(
        "# MND-MST reproduction — scale 1/{}, seed {}, verify {}",
        ctx.scale, ctx.seed, ctx.verify
    );
    println!("(times are simulated seconds at paper scale; see DESIGN.md)");
    let thr = |t: usize| {
        if t == usize::MAX {
            "=seq".to_string() // clamped: parallel never won in calibration
        } else {
            format!(">{t}")
        }
    };
    println!(
        "(kernel policy: election{} [{}] reduce{} count{} [{}] relabel{} chunk={}, cached per host)",
        thr(ctx.kernel_policy.par_threshold),
        mnd_device::variant_name(ctx.kernel_policy.election_variant),
        thr(ctx.kernel_policy.reduce_par_threshold),
        thr(ctx.kernel_policy.count_par_threshold),
        mnd_device::variant_name(ctx.kernel_policy.count_variant),
        thr(ctx.kernel_policy.relabel_par_threshold),
        ctx.kernel_policy.chunk_rows
    );

    if want("table2") {
        let rows = table2(&ctx);
        emit(
            "table2",
            "Table 2: graph stand-ins (scaled 1/N of the paper's graphs)",
            &[
                "graph",
                "|V|",
                "|E|",
                "avg deg",
                "max deg",
                "diam",
                "paper avg deg",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        r.vertices.to_string(),
                        r.edges.to_string(),
                        format!("{:.2}", r.avg_degree),
                        r.max_degree.to_string(),
                        r.diameter.to_string(),
                        format!("{:.2}", r.paper_avg_degree),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("table3") {
        let rows = table3(&ctx, nranks);
        emit(
            "table3",
            &format!("Table 3: Pregel+ vs MND-MST ({nranks} nodes, CPU only)"),
            &[
                "graph",
                "Pregel+ exe",
                "Pregel+ comm",
                "MND exe",
                "MND comm",
                "improv",
                "comm red",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        secs(r.pregel_exe),
                        secs(r.pregel_comm),
                        secs(r.mnd_exe),
                        secs(r.mnd_comm),
                        pct(r.improvement()),
                        pct(r.comm_reduction()),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("table4") {
        let rows = table4(&ctx);
        emit(
            "table4",
            "Table 4: MND-MST with increasing node counts (AMD cluster)",
            &["graph", "nodes", "exe time"],
            &rows
                .iter()
                .map(|r| vec![r.graph.into(), r.nodes.to_string(), secs(r.mnd_exe)])
                .collect::<Vec<_>>(),
        );
    }

    if want("fig4") {
        let rows = fig4(&ctx);
        emit(
            "fig4",
            "Figure 4: inter-node scalability, Pregel+ vs MND-MST",
            &["graph", "nodes", "Pregel+ exe", "MND exe"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        r.nodes.to_string(),
                        r.pregel_exe.map(secs).unwrap_or_else(|| "-".into()),
                        secs(r.mnd_exe),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("fig5") {
        let rows = fig5(&ctx);
        emit(
            "fig5",
            "Figure 5: computation vs communication",
            &["graph", "nodes", "system", "comp", "comm", "comm frac"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        r.nodes.to_string(),
                        r.system.into(),
                        secs(r.comp),
                        secs(r.comm),
                        pct(r.comm_fraction()),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("fig6") {
        let rows = fig6(&ctx);
        emit(
            "fig6",
            "Figure 6: CPU-only MND-MST scalability (Cray)",
            &["graph", "nodes", "exe time"],
            &rows
                .iter()
                .map(|r| vec![r.graph.into(), r.nodes.to_string(), secs(r.mnd_exe)])
                .collect::<Vec<_>>(),
        );
    }

    if want("fig7") {
        let rows = fig7(&ctx);
        emit(
            "fig7",
            "Figure 7: execution time per phase (Cray, CPU only)",
            &["graph", "nodes", "indComp", "merge", "postProcess", "comm"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        r.nodes.to_string(),
                        secs(r.ind_comp),
                        secs(r.merge),
                        secs(r.post_process),
                        secs(r.comm),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("fig8") {
        let rows = fig8(&ctx);
        emit(
            "fig8",
            "Figure 8: MND-MST CPU-only vs CPU-GPU (Cray)",
            &["graph", "nodes", "CPU-only", "CPU+GPU", "GPU benefit"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        r.nodes.to_string(),
                        secs(r.cpu_only),
                        secs(r.cpu_gpu),
                        pct(r.improvement()),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    for (name, rows) in [
        (
            "ablation-group",
            want("ablation-group").then(|| ablation_group(&ctx, nranks)),
        ),
        (
            "ablation-excp",
            want("ablation-excp").then(|| ablation_excp(&ctx, nranks)),
        ),
        (
            "ablation-thresh",
            want("ablation-thresh").then(|| ablation_thresh(&ctx, nranks)),
        ),
        (
            "ablation-locality",
            want("ablation-locality").then(|| ablation_locality(&ctx, nranks)),
        ),
        (
            "ablation-weights",
            want("ablation-weights").then(|| ablation_weights(&ctx, nranks)),
        ),
        (
            "ablation-network",
            want("ablation-network").then(|| ablation_network(&ctx, nranks)),
        ),
    ] {
        if let Some(rows) = rows {
            emit(
                name,
                &format!("Ablation: {name}"),
                &["variant", "exe", "comm", "rounds"],
                &rows
                    .iter()
                    .map(|r| {
                        vec![
                            r.variant.clone(),
                            secs(r.exe),
                            secs(r.comm),
                            r.rounds.to_string(),
                        ]
                    })
                    .collect::<Vec<_>>(),
            );
        }
    }

    if want("chaos") {
        // One sweep per grid seed (default: just the context seed) — the
        // recovery columns must stay nonzero across seeds, not at one
        // lucky crash schedule.
        let seeds = if seed_grid.is_empty() {
            vec![ctx.seed]
        } else {
            seed_grid.clone()
        };
        let mut flat: Vec<Vec<String>> = Vec::new();
        for &seed in &seeds {
            let sctx = ExpContext {
                seed,
                ..ctx.clone()
            };
            for r in chaos(&sctx, nranks) {
                flat.push(vec![
                    seed.to_string(),
                    r.plan.clone(),
                    secs(r.exe),
                    pct(r.overhead),
                    r.retries.to_string(),
                    r.redeliveries.to_string(),
                    r.restores.to_string(),
                    secs(r.stall),
                    secs(r.replayed_compute),
                    r.replayed_in_bytes.to_string(),
                ]);
            }
        }
        emit(
            "chaos",
            &format!("Chaos: fault-plane overhead sweep ({nranks} nodes, oracle-verified)"),
            &[
                "seed",
                "fault plan",
                "exe",
                "overhead",
                "retries",
                "redeliveries",
                "restores",
                "stall",
                "replayed comp",
                "replayed bytes",
            ],
            &flat,
        );
    }

    if want("resilience") {
        // Both engines under the same fault schedule, one sweep per grid
        // seed — the BSP runs are oracle-verified and every faulted run's
        // logical traffic is asserted equal to its fault-free baseline.
        let seeds = if seed_grid.is_empty() {
            vec![ctx.seed]
        } else {
            seed_grid.clone()
        };
        let mut flat: Vec<Vec<String>> = Vec::new();
        for &seed in &seeds {
            let sctx = ExpContext {
                seed,
                ..ctx.clone()
            };
            for r in resilience(&sctx, nranks) {
                flat.push(vec![
                    seed.to_string(),
                    r.engine.to_string(),
                    r.plan.clone(),
                    secs(r.exe),
                    secs(r.recovery),
                    pct(r.overhead),
                    r.restores.to_string(),
                    secs(r.stall),
                    secs(r.replayed_compute),
                    r.replayed_in_bytes.to_string(),
                    r.reexec.to_string(),
                ]);
            }
        }
        emit(
            "resilience",
            &format!("Resilience: every registered engine under the same fault plans ({nranks} nodes, oracle-verified)"),
            &[
                "seed",
                "engine",
                "fault plan",
                "exe",
                "recovery",
                "overhead",
                "restores",
                "stall",
                "replayed comp",
                "replayed bytes",
                "reexec",
            ],
            &flat,
        );
    }

    if want("checkpoint-sweep") {
        let rows = checkpoint_sweep(&ctx, nranks);
        let flat: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.engine.to_string(),
                    r.interval.to_string(),
                    secs(r.clean_exe),
                    r.writes.to_string(),
                    r.ckpt_bytes.to_string(),
                    secs(r.crash_exe),
                    secs(r.recovery),
                    r.restores.to_string(),
                    r.reexec.to_string(),
                    secs(r.replayed_compute),
                ]
            })
            .collect();
        emit(
            "checkpoint_sweep",
            &format!(
                "Checkpoint sweep: overhead vs recovery cost per cadence ({nranks} nodes, oracle-verified; spmsf-full = delta encoding off)"
            ),
            &[
                "engine",
                "interval",
                "clean exe",
                "writes",
                "ckpt bytes",
                "crash exe",
                "recovery",
                "restores",
                "reexec",
                "replayed comp",
            ],
            &flat,
        );
    }

    if want("engines") {
        let rows = engine_list(&ctx, nranks);
        emit(
            "engines",
            "Registered engines (mnd::engines::registry)",
            &["engine", "description"],
            &rows
                .iter()
                .map(|r| vec![r.name.into(), r.description.into()])
                .collect::<Vec<_>>(),
        );
    }

    if want("serve-sweep") {
        let sweep = serve_sweep(&ctx, nranks);
        emit(
            "serve_tenants",
            &format!(
                "Serve sweep: per-tenant latency/throughput ({nranks} ranks, mixed MST/CC/BFS/update workload, oracle-verified)"
            ),
            &[
                "plane", "tenant", "weight", "jobs", "done", "rej", "hits", "p50", "p95", "p99",
                "jobs/s",
            ],
            &sweep
                .tenants
                .iter()
                .map(|t| {
                    vec![
                        t.plane.clone(),
                        t.tenant.clone(),
                        format!("{:.0}", t.weight),
                        t.submitted.to_string(),
                        t.completed.to_string(),
                        t.rejected.to_string(),
                        t.cache_hits.to_string(),
                        secs(t.p50),
                        secs(t.p95),
                        secs(t.p99),
                        format!("{:.4}", t.throughput),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        emit(
            "serve_planes",
            "Serve sweep: cache + update-path summary per plane",
            &[
                "plane",
                "done",
                "rej",
                "hits",
                "miss",
                "saved",
                "update exec",
                "makespan",
                "util",
            ],
            &sweep
                .planes
                .iter()
                .map(|p| {
                    vec![
                        p.plane.clone(),
                        p.completed.to_string(),
                        p.rejected.to_string(),
                        p.cache_hits.to_string(),
                        p.cache_misses.to_string(),
                        secs(p.saved),
                        secs(p.update_exec),
                        secs(p.makespan),
                        format!("{:.1}%", p.utilisation * 100.0),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("traffic") {
        let rows = traffic(&ctx, nranks);
        emit(
            "traffic",
            &format!("Per-tag traffic ({nranks} nodes, 2% drop + 2% duplicates)"),
            &["tag", "bytes sent", "messages", "retries", "redeliveries"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.tag.clone(),
                        r.bytes_sent.to_string(),
                        r.messages.to_string(),
                        r.retries.to_string(),
                        r.redeliveries.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("kernel-sweep") {
        let cal = mnd_device::calibrate_kernel_policy(ctx.seed);
        emit(
            "kernel-crossover",
            &format!(
                "Kernel crossover calibration (election{} [{}], reduce{}, count{} [{}], relabel{}, chunk_rows={})",
                thr(cal.policy.par_threshold),
                mnd_device::variant_name(cal.policy.election_variant),
                thr(cal.policy.reduce_par_threshold),
                thr(cal.policy.count_par_threshold),
                mnd_device::variant_name(cal.policy.count_variant),
                thr(cal.policy.relabel_par_threshold),
                cal.policy.chunk_rows
            ),
            &["rows", "seq ns", "best par ns", "best chunk", "lockfree ns"],
            &cal.table
                .iter()
                .map(|r| {
                    let (chunk, ns) = r.best_par().unwrap_or((0, u64::MAX));
                    vec![
                        r.rows.to_string(),
                        r.seq_ns.to_string(),
                        ns.to_string(),
                        chunk.to_string(),
                        r.lockfree_ns.map_or("-".into(), |ns| ns.to_string()),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let rows = kernel_sweep(ctx.seed, &SWEEP_SIZES, &ctx.kernel_policy);
        // Display rows: one `seq` baseline row per kernel/size plus one row
        // per measured parallel variant; `--variant` filters on the column.
        let mut flat: Vec<Vec<String>> = Vec::new();
        let keep = |v: &str| variant_filter.as_deref().is_none_or(|f| f == v);
        for r in &rows {
            // The chunk-merge row is always the first per kernel/size, so
            // hang the shared seq baseline row off it.
            if r.variant == "chunk-merge" && keep("seq") {
                let seq_selected = !rows
                    .iter()
                    .any(|o| o.kernel == r.kernel && o.rows == r.rows && o.selected);
                flat.push(vec![
                    r.kernel.into(),
                    "seq".into(),
                    r.rows.to_string(),
                    r.seq_ns.to_string(),
                    "-".into(),
                    "-".into(),
                    "1.00x".into(),
                    if seq_selected { "yes" } else { "" }.to_string(),
                ]);
            }
            if keep(r.variant) {
                flat.push(vec![
                    r.kernel.into(),
                    r.variant.into(),
                    r.rows.to_string(),
                    r.seq_ns.to_string(),
                    r.par_ns.to_string(),
                    r.chunk.to_string(),
                    format!("{:.2}x", r.speedup()),
                    if r.selected { "yes" } else { "" }.to_string(),
                ]);
            }
        }
        emit(
            "kernel-sweep",
            "Kernel sweep: seq vs chunk-merge vs lock-free holding-plane kernels",
            &[
                "kernel", "variant", "rows", "seq ns", "par ns", "chunk", "speedup", "selected",
            ],
            &flat,
        );
    }

    if want("calibration") {
        let rows = calibration(&ctx);
        emit(
            "calibration",
            "Calibration (§4.3.1): CPU/GPU split per graph",
            &["graph", "gpu speedup", "cpu fraction", "memory limited"],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.graph.into(),
                        format!("{:.2}x", r.gpu_speedup),
                        format!("{:.2}", r.cpu_fraction),
                        r.memory_limited.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }

    if want("emst-sweep") {
        let sweep = emst_sweep(&ctx, nranks);
        if ctx.verify {
            println!(
                "(EMST oracle: brute-force EMST on {} points per preset matched the k-NN MST \
                 and every engine; max inclusion threshold k* = {})",
                sweep.oracle_points, sweep.oracle_kstar
            );
        }
        emit(
            "emst_sweep",
            &format!(
                "EMST sweep: every engine over the geometric presets ({nranks} nodes, oracle-verified)"
            ),
            &[
                "preset", "engine", "|V|", "|E|", "avg deg", "max deg", "k", "exe", "comm",
            ],
            &sweep
                .rows
                .iter()
                .map(|r| {
                    vec![
                        r.preset.into(),
                        r.engine.into(),
                        r.vertices.to_string(),
                        r.edges.to_string(),
                        format!("{:.2}", r.avg_degree),
                        r.max_degree.to_string(),
                        r.k.to_string(),
                        secs(r.exe),
                        secs(r.comm),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        emit(
            "emst_devices",
            "EMST device calibration: occupancy/split/recursion on bounded-degree inputs vs crawls",
            &[
                "graph",
                "skew",
                "occ binned",
                "occ unbinned",
                "gpu speedup",
                "cpu frac",
                "paper |E|",
                "rec. thresh",
                "recurses",
            ],
            &sweep
                .devices
                .iter()
                .map(|d| {
                    vec![
                        d.graph.clone(),
                        format!("{:.3}", d.skew),
                        format!("{:.3}", d.occ_binned),
                        format!("{:.3}", d.occ_unbinned),
                        format!("{:.2}x", d.gpu_speedup),
                        format!("{:.2}", d.cpu_fraction),
                        d.paper_edges.to_string(),
                        d.recursion_threshold.to_string(),
                        d.recurses.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let serve = emst_serve_session(&ctx, nranks);
        emit(
            "emst_serve",
            "EMST serve session: point insertions through the incremental plane (oracle-verified)",
            &[
                "preset",
                "points",
                "batches",
                "inserts",
                "forest edges",
                "update exec",
            ],
            &[vec![
                serve.preset.into(),
                serve.points.to_string(),
                serve.batches.to_string(),
                serve.inserts.to_string(),
                serve.forest_edges.to_string(),
                secs(serve.update_exec),
            ]],
        );
    }

    if want("comm-sweep") {
        let rows = comm_sweep(&ctx, nranks);
        emit(
            "comm_sweep",
            &format!(
                "Comm sweep: dense vs sparse exchange, compression, filter-Boruvka ({nranks} nodes, oracle-verified)"
            ),
            &[
                "preset",
                "variant",
                "messages",
                "wire MB",
                "alltoall msgs",
                "header msgs",
                "exe",
            ],
            &rows
                .iter()
                .map(|r| {
                    vec![
                        r.preset.into(),
                        r.variant.clone(),
                        r.messages.to_string(),
                        format!("{:.3}", r.wire_mb),
                        r.payload_msgs.to_string(),
                        r.header_msgs.to_string(),
                        secs(r.exe),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        let cal = comm_calibration(&ctx);
        emit(
            "comm_calibration",
            "Comm calibration: assumed vs measured per-round exchange messages",
            &[
                "nodes",
                "rounds",
                "assumed msgs",
                "measured msgs",
                "assumed thresh",
                "measured thresh",
            ],
            &cal.iter()
                .map(|r| {
                    vec![
                        r.nranks.to_string(),
                        r.exchange_rounds.to_string(),
                        format!("{:.1}", r.assumed_msgs),
                        format!("{:.1}", r.measured_msgs),
                        r.assumed_threshold.to_string(),
                        r.measured_threshold.to_string(),
                    ]
                })
                .collect::<Vec<_>>(),
        );
    }
}
