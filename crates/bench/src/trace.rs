//! `--trace` support: streams phase samples and chaos events as JSON
//! lines.
//!
//! [`JsonlTrace`] is a [`PhaseObserver`] that serializes every
//! [`PhaseSample`] and every chaos event to one JSON object per line —
//! grep/`jq`-friendly, ingestible by any log pipeline. Attach it through
//! [`crate::ExpContext::observer`] (the `repro --trace PATH` flag does
//! exactly that; `-` streams to stdout).
//!
//! Serialization is hand-rolled: every field is a number or a
//! `[a-z_()0-9]` string, so no escaping is needed and the workspace stays
//! dependency-free.

use std::io::Write;
use std::sync::Mutex;

use mnd_hypar::chaos::ChaosEvent;
use mnd_hypar::observe::{PhaseKind, PhaseObserver, PhaseSample};

/// A line-oriented JSON trace sink. Writes are locked per line, so
/// concurrent rank threads interleave whole records, never bytes.
pub struct JsonlTrace {
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlTrace {
    /// Traces to any writer (file, stdout, a test buffer).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlTrace {
            out: Mutex::new(out),
        }
    }

    /// Traces to stdout.
    pub fn stdout() -> Self {
        JsonlTrace::new(Box::new(std::io::stdout()))
    }

    /// Traces to a file at `path` (created/truncated).
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(JsonlTrace::new(Box::new(std::fs::File::create(path)?)))
    }

    fn write_line(&self, line: String) {
        let mut out = self.out.lock().expect("trace sink poisoned");
        // A broken pipe mid-sweep shouldn't abort the experiment.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl PhaseObserver for JsonlTrace {
    fn on_phase(&self, kind: PhaseKind, s: &PhaseSample) {
        self.write_line(format!(
            concat!(
                "{{\"type\":\"phase\",\"kind\":\"{}\",\"rank\":{},\"level\":{},",
                "\"compute_time\":{},\"comm_time\":{},\"bytes_sent\":{},",
                "\"messages_sent\":{}}}"
            ),
            kind.name(),
            s.rank,
            s.level,
            s.compute_time,
            s.comm_time,
            s.bytes_sent,
            s.messages_sent,
        ));
    }

    fn on_chaos(&self, e: &ChaosEvent) {
        self.write_line(format!(
            concat!(
                "{{\"type\":\"chaos\",\"kind\":\"{}\",\"rank\":{},\"level\":{},",
                "\"boundary\":{},\"time\":{},\"detail\":{}}}"
            ),
            e.kind.name(),
            e.rank,
            e.level,
            e.boundary,
            e.time,
            e.detail,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_hypar::chaos::ChaosEventKind;
    use std::sync::Arc;

    /// A shared in-memory sink the trace can write into.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_json_object_per_line() {
        let buf = Buf::default();
        let trace = JsonlTrace::new(Box::new(buf.clone()));
        trace.on_phase(
            PhaseKind::IndComp,
            &PhaseSample {
                rank: 2,
                level: 1,
                compute_time: 0.5,
                comm_time: 0.25,
                bytes_sent: 640,
                messages_sent: 3,
            },
        );
        trace.on_chaos(&ChaosEvent {
            rank: 1,
            kind: ChaosEventKind::CheckpointWrite,
            level: 0,
            boundary: 4,
            time: 1.5,
            detail: 1024,
        });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"phase\",\"kind\":\"ind_comp\""));
        assert!(lines[0].contains("\"rank\":2") && lines[0].contains("\"bytes_sent\":640"));
        assert!(lines[1].starts_with("{\"type\":\"chaos\",\"kind\":\"checkpoint_write\""));
        assert!(lines[1].contains("\"boundary\":4") && lines[1].contains("\"detail\":1024"));
        // Minimal well-formedness: balanced braces, no raw newlines inside.
        for l in lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
            assert_eq!(l.matches('{').count(), l.matches('}').count());
        }
    }
}
