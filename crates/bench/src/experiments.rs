//! One function per paper table/figure (and per ablation). Each returns
//! structured rows; the `repro` binary formats them.

use std::collections::BTreeMap;
use std::sync::Arc;

use mnd::engines::{registry, EngineParams};
use mnd_chaos::FaultPlan;
use mnd_device::{calibrate_split, NodePlatform};
use mnd_engine::{Engine, EngineChaos};
use mnd_graph::gen::GeoPreset;
use mnd_graph::presets::Preset;
use mnd_graph::stats::graph_stats;
use mnd_graph::types::{VertexId, WEdge, Weight};
use mnd_graph::{CsrGraph, EdgeList};
use mnd_hypar::observe::ObserverHook;
use mnd_hypar::HyParConfig;
use mnd_kernels::oracle::kruskal_msf;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};
use mnd_mst::{MndMstReport, MndMstRunner};
use mnd_net::Tag;
use mnd_pregel::{pregel_msf, BspConfig, PregelReport};
use mnd_serve::{
    EngineBackend, JobKind, JobResult, JobSpec, ServeConfig, ServePlane, ServeReport, TenantSpec,
    UpdateMode,
};
use mnd_spmsf::SpmsfEngine;

/// Shared experiment parameters.
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Scale divisor: stand-ins are `1/scale` of the paper's graphs, and
    /// simulated costs are scaled back up by the same factor.
    pub scale: u64,
    /// Generator seed.
    pub seed: u64,
    /// Verify every distributed MSF against the Kruskal oracle (on by
    /// default; the harness refuses to time incorrect runs).
    pub verify: bool,
    /// Optional observer attached to every MND run's config — the
    /// `--trace` plumbing (see [`crate::trace`]). Unset by default.
    pub observer: ObserverHook,
    /// Holding-plane kernel policy threaded into every MND run. Defaults
    /// to the conservative fallback; the `repro` binary installs the
    /// host-calibrated (disk-cached) policy instead. Never changes
    /// results — only which kernels take the chunk-parallel path.
    pub kernel_policy: KernelPolicy,
}

impl Default for ExpContext {
    fn default() -> Self {
        ExpContext {
            scale: crate::DEFAULT_SCALE,
            seed: 42,
            verify: true,
            observer: ObserverHook::none(),
            kernel_policy: KernelPolicy::default(),
        }
    }
}

impl ExpContext {
    /// Generates the scaled stand-in for a preset.
    pub fn graph(&self, p: Preset) -> EdgeList {
        p.generate(self.scale, self.seed)
    }

    /// HyPar config carrying the simulation scale (and the context's
    /// observer, when one is attached).
    pub fn hypar(&self) -> HyParConfig {
        let mut cfg = HyParConfig::default()
            .with_sim_scale(self.scale as f64)
            .with_kernel_policy(self.kernel_policy);
        cfg.observer = self.observer.clone();
        cfg
    }

    /// BSP config carrying the simulation scale.
    pub fn bsp(&self) -> BspConfig {
        BspConfig::default().with_sim_scale(self.scale as f64)
    }

    fn check_mnd(&self, el: &EdgeList, r: &MndMstReport, what: &str) {
        if self.verify {
            let oracle = kruskal_msf(el);
            assert_eq!(r.msf, oracle, "{what}: MND-MST result != oracle");
        }
    }

    fn check_bsp(&self, el: &EdgeList, r: &PregelReport, what: &str) {
        if self.verify {
            let oracle = kruskal_msf(el);
            assert_eq!(r.msf, oracle, "{what}: BSP result != oracle");
        }
    }
}

/// Runs MND-MST (verified) and returns the report.
pub fn run_mnd(
    ctx: &ExpContext,
    el: &EdgeList,
    nranks: usize,
    platform: NodePlatform,
    cfg: HyParConfig,
) -> MndMstReport {
    let r = MndMstRunner::new(nranks)
        .with_platform(platform)
        .with_config(cfg)
        .run(el);
    ctx.check_mnd(el, &r, "run_mnd");
    r
}

/// Runs the BSP baseline (verified) and returns the report.
pub fn run_bsp(ctx: &ExpContext, el: &EdgeList, nranks: usize) -> PregelReport {
    let r = pregel_msf(el, nranks, &NodePlatform::amd_cluster(), &ctx.bsp());
    ctx.check_bsp(el, &r, "run_bsp");
    r
}

// --------------------------------------------------------------------- //
// Table 2: graph specifications
// --------------------------------------------------------------------- //

/// One row of our Table 2 analogue.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Graph name.
    pub graph: &'static str,
    /// Stand-in vertices / edges.
    pub vertices: u64,
    /// Stand-in edge count.
    pub edges: u64,
    /// Stand-in avg degree.
    pub avg_degree: f64,
    /// Stand-in max degree.
    pub max_degree: u64,
    /// Stand-in approximate diameter.
    pub diameter: u64,
    /// Paper-reported avg degree (for comparison).
    pub paper_avg_degree: f64,
}

/// Regenerates Table 2 (graph specifications) for the scaled stand-ins.
pub fn table2(ctx: &ExpContext) -> Vec<Table2Row> {
    Preset::ALL
        .iter()
        .map(|&p| {
            let el = ctx.graph(p);
            let g = CsrGraph::from_edge_list(&el);
            let s = graph_stats(&g, 2, ctx.seed);
            Table2Row {
                graph: p.name(),
                vertices: s.num_vertices,
                edges: s.num_edges,
                avg_degree: s.avg_degree,
                max_degree: s.max_degree,
                diameter: s.approx_diameter,
                paper_avg_degree: p.paper_row().avg_degree,
            }
        })
        .collect()
}

// --------------------------------------------------------------------- //
// Table 3: Pregel+ vs MND-MST on 16 nodes (AMD cluster, CPU only)
// --------------------------------------------------------------------- //

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Graph name.
    pub graph: &'static str,
    /// BSP execution time (simulated seconds, paper scale).
    pub pregel_exe: f64,
    /// BSP communication time.
    pub pregel_comm: f64,
    /// MND-MST execution time.
    pub mnd_exe: f64,
    /// MND-MST communication time.
    pub mnd_comm: f64,
}

impl Table3Row {
    /// Performance improvement of MND-MST over the BSP baseline
    /// (the paper's 24–88%).
    pub fn improvement(&self) -> f64 {
        1.0 - self.mnd_exe / self.pregel_exe
    }

    /// Communication-time reduction (the paper's 40–92%).
    pub fn comm_reduction(&self) -> f64 {
        1.0 - self.mnd_comm / self.pregel_comm
    }
}

/// Regenerates Table 3 on `nranks` (paper: 16) AMD nodes.
pub fn table3(ctx: &ExpContext, nranks: usize) -> Vec<Table3Row> {
    Preset::ALL
        .iter()
        .map(|&p| {
            let el = ctx.graph(p);
            let bsp = run_bsp(ctx, &el, nranks);
            let mnd = run_mnd(ctx, &el, nranks, NodePlatform::amd_cluster(), ctx.hypar());
            Table3Row {
                graph: p.name(),
                pregel_exe: bsp.total_time,
                pregel_comm: bsp.comm_time,
                mnd_exe: mnd.total_time,
                mnd_comm: mnd.comm_time,
            }
        })
        .collect()
}

// --------------------------------------------------------------------- //
// Table 4 + Figure 4: node scaling, MND-MST vs Pregel+
// --------------------------------------------------------------------- //

/// A (graph, nodes) scaling measurement.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Graph name.
    pub graph: &'static str,
    /// Node count.
    pub nodes: usize,
    /// MND-MST execution time.
    pub mnd_exe: f64,
    /// BSP execution time, when measured (`None` for MND-only sweeps).
    pub pregel_exe: Option<f64>,
}

/// The node counts the paper sweeps.
pub const NODE_COUNTS: [usize; 4] = [1, 4, 8, 16];

/// Regenerates Table 4 (MND-MST times for arabic-2005 and it-2004 at
/// 1/4/8/16 AMD nodes).
pub fn table4(ctx: &ExpContext) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for p in [Preset::Arabic2005, Preset::It2004] {
        let el = ctx.graph(p);
        for nodes in NODE_COUNTS {
            let mnd = run_mnd(ctx, &el, nodes, NodePlatform::amd_cluster(), ctx.hypar());
            rows.push(ScalingRow {
                graph: p.name(),
                nodes,
                mnd_exe: mnd.total_time,
                pregel_exe: None,
            });
        }
    }
    rows
}

/// Regenerates Figure 4 (inter-node scalability, Pregel+ vs MND-MST, for
/// arabic-2005 and it-2004).
pub fn fig4(ctx: &ExpContext) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    for p in [Preset::Arabic2005, Preset::It2004] {
        let el = ctx.graph(p);
        for nodes in NODE_COUNTS {
            let mnd = run_mnd(ctx, &el, nodes, NodePlatform::amd_cluster(), ctx.hypar());
            let bsp = run_bsp(ctx, &el, nodes);
            rows.push(ScalingRow {
                graph: p.name(),
                nodes,
                mnd_exe: mnd.total_time,
                pregel_exe: Some(bsp.total_time),
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Figure 5: computation vs communication split
// --------------------------------------------------------------------- //

/// Computation/communication split for one (system, graph, nodes) cell.
#[derive(Clone, Debug)]
pub struct CompCommRow {
    /// Graph name.
    pub graph: &'static str,
    /// Node count.
    pub nodes: usize,
    /// System name ("pregel+" or "mnd-mst").
    pub system: &'static str,
    /// Computation seconds (max across ranks).
    pub comp: f64,
    /// Communication seconds (max across ranks).
    pub comm: f64,
}

impl CompCommRow {
    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        if self.comp + self.comm == 0.0 {
            0.0
        } else {
            self.comm / (self.comp + self.comm)
        }
    }
}

/// Regenerates Figure 5 for arabic-2005 and it-2004.
pub fn fig5(ctx: &ExpContext) -> Vec<CompCommRow> {
    let mut rows = Vec::new();
    for p in [Preset::Arabic2005, Preset::It2004] {
        let el = ctx.graph(p);
        for nodes in [4usize, 8, 16] {
            let bsp = run_bsp(ctx, &el, nodes);
            let bsp_comp = bsp
                .rank_stats
                .iter()
                .map(|s| s.compute_time)
                .fold(0.0, f64::max);
            rows.push(CompCommRow {
                graph: p.name(),
                nodes,
                system: "pregel+",
                comp: bsp_comp,
                comm: bsp.comm_time,
            });
            let mnd = run_mnd(ctx, &el, nodes, NodePlatform::amd_cluster(), ctx.hypar());
            let mnd_comp = mnd
                .rank_stats
                .iter()
                .map(|s| s.compute_time)
                .fold(0.0, f64::max);
            rows.push(CompCommRow {
                graph: p.name(),
                nodes,
                system: "mnd-mst",
                comp: mnd_comp,
                comm: mnd.comm_time,
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Figure 6: CPU-only MND-MST scalability on the Cray
// --------------------------------------------------------------------- //

/// Regenerates Figure 6: all six graphs, 1/4/8/16 Cray nodes, CPU only.
/// Graphs whose per-node data exceeds node memory at one node are skipped
/// there (the paper "could not accommodate the last two graphs in a single
/// node").
pub fn fig6(ctx: &ExpContext) -> Vec<ScalingRow> {
    let mut rows = Vec::new();
    let platform = NodePlatform::cray_xc40(false);
    for &p in Preset::ALL.iter() {
        let el = ctx.graph(p);
        let paper_bytes = el.len() as u64 * 20 * ctx.scale;
        for nodes in NODE_COUNTS {
            if paper_bytes / nodes as u64 > platform.cpu.mem_bytes {
                continue; // would not fit, like sk-2005/uk-2007 on 1 node
            }
            let mnd = run_mnd(ctx, &el, nodes, platform.clone(), ctx.hypar());
            rows.push(ScalingRow {
                graph: p.name(),
                nodes,
                mnd_exe: mnd.total_time,
                pregel_exe: None,
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Figure 7: phase breakdown
// --------------------------------------------------------------------- //

/// Phase breakdown for one (graph, nodes) cell.
#[derive(Clone, Debug)]
pub struct PhaseRow {
    /// Graph name.
    pub graph: &'static str,
    /// Node count.
    pub nodes: usize,
    /// indComp seconds (max across ranks).
    pub ind_comp: f64,
    /// Merge/reduction seconds.
    pub merge: f64,
    /// postProcess seconds.
    pub post_process: f64,
    /// Communication seconds.
    pub comm: f64,
}

/// Regenerates Figure 7 (phase times) for the paper's three featured
/// graphs: road_usa, gsh-2015-tpd and uk-2007.
pub fn fig7(ctx: &ExpContext) -> Vec<PhaseRow> {
    let platform = NodePlatform::cray_xc40(false);
    let mut rows = Vec::new();
    for p in [Preset::RoadUsa, Preset::Gsh2015Tpd, Preset::Uk2007] {
        let el = ctx.graph(p);
        let paper_bytes = el.len() as u64 * 20 * ctx.scale;
        for nodes in NODE_COUNTS {
            if paper_bytes / nodes as u64 > platform.cpu.mem_bytes {
                continue;
            }
            let mnd = run_mnd(ctx, &el, nodes, platform.clone(), ctx.hypar());
            let pm = mnd.phase_max();
            rows.push(PhaseRow {
                graph: p.name(),
                nodes,
                ind_comp: pm.ind_comp,
                merge: pm.merge,
                post_process: pm.post_process,
                comm: pm.comm,
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Figure 8: CPU-only vs CPU-GPU scalability
// --------------------------------------------------------------------- //

/// CPU-only vs CPU+GPU comparison cell.
#[derive(Clone, Debug)]
pub struct HybridRow {
    /// Graph name.
    pub graph: &'static str,
    /// Node count.
    pub nodes: usize,
    /// CPU-only execution time.
    pub cpu_only: f64,
    /// CPU+GPU execution time.
    pub cpu_gpu: f64,
}

impl HybridRow {
    /// GPU benefit (paper: up to 23%, average 9%).
    pub fn improvement(&self) -> f64 {
        1.0 - self.cpu_gpu / self.cpu_only
    }
}

/// Regenerates Figure 8 for it-2004, sk-2005 and uk-2007 on the Cray.
pub fn fig8(ctx: &ExpContext) -> Vec<HybridRow> {
    let mut rows = Vec::new();
    for p in [Preset::It2004, Preset::Sk2005, Preset::Uk2007] {
        let el = ctx.graph(p);
        let cpu_plat = NodePlatform::cray_xc40(false);
        let paper_bytes = el.len() as u64 * 20 * ctx.scale;
        for nodes in NODE_COUNTS {
            if paper_bytes / nodes as u64 > cpu_plat.cpu.mem_bytes {
                continue;
            }
            let cpu = run_mnd(ctx, &el, nodes, cpu_plat.clone(), ctx.hypar());
            let gpu = run_mnd(ctx, &el, nodes, NodePlatform::cray_xc40(true), ctx.hypar());
            rows.push(HybridRow {
                graph: p.name(),
                nodes,
                cpu_only: cpu.total_time,
                cpu_gpu: gpu.total_time,
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Ablations
// --------------------------------------------------------------------- //

/// Time for one configuration variant.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Execution time.
    pub exe: f64,
    /// Communication time.
    pub comm: f64,
    /// Exchange rounds (where meaningful).
    pub rounds: usize,
}

/// §3.4 group-size study (paper tried 2/4/8/16 and chose 4).
pub fn ablation_group(ctx: &ExpContext, nranks: usize) -> Vec<AblationRow> {
    let el = ctx.graph(Preset::Arabic2005);
    [2usize, 4, 8, 16]
        .iter()
        .map(|&gs| {
            let cfg = HyParConfig {
                group_size: gs,
                ..ctx.hypar()
            };
            let r = run_mnd(ctx, &el, nranks, NodePlatform::amd_cluster(), cfg);
            AblationRow {
                variant: format!("group_size={gs}"),
                exe: r.total_time,
                comm: r.comm_time,
                rounds: r.exchange_rounds,
            }
        })
        .collect()
}

/// §4.1.2 exception-condition study: border-edge vs border-vertex, sticky
/// vs recheck freezing.
pub fn ablation_excp(ctx: &ExpContext, nranks: usize) -> Vec<AblationRow> {
    let el = ctx.graph(Preset::Arabic2005);
    let variants: [(&str, ExcpCond, FreezePolicy); 3] = [
        (
            "border-edge/sticky",
            ExcpCond::BorderEdge,
            FreezePolicy::Sticky,
        ),
        (
            "border-edge/recheck",
            ExcpCond::BorderEdge,
            FreezePolicy::Recheck,
        ),
        (
            "border-vertex/sticky",
            ExcpCond::BorderVertex,
            FreezePolicy::Sticky,
        ),
    ];
    variants
        .iter()
        .map(|&(name, excp, freeze)| {
            let cfg = HyParConfig {
                excp,
                freeze,
                ..ctx.hypar()
            };
            let r = run_mnd(ctx, &el, nranks, NodePlatform::amd_cluster(), cfg);
            AblationRow {
                variant: name.to_string(),
                exe: r.total_time,
                comm: r.comm_time,
                rounds: r.exchange_rounds,
            }
        })
        .collect()
}

/// §4.3.2/§4.3.3 runtime-threshold study: diminishing-benefit stop on/off
/// and recursion on/off, plus the BSP baseline's own optimisation toggles.
pub fn ablation_thresh(ctx: &ExpContext, nranks: usize) -> Vec<AblationRow> {
    let el = ctx.graph(Preset::Arabic2005);
    let mut rows = Vec::new();
    for (name, stop) in [
        (
            "stop=diminishing(5%)",
            StopPolicy::DiminishingBenefit {
                min_improvement: 0.05,
            },
        ),
        ("stop=exhaustive", StopPolicy::Exhaustive),
    ] {
        let cfg = HyParConfig {
            stop,
            ..ctx.hypar()
        };
        let r = run_mnd(ctx, &el, nranks, NodePlatform::amd_cluster(), cfg);
        rows.push(AblationRow {
            variant: name.to_string(),
            exe: r.total_time,
            comm: r.comm_time,
            rounds: r.exchange_rounds,
        });
    }
    for (name, threshold) in [
        ("recursion=on (100M edges, §4.3.3)", 100_000_000u64),
        ("recursion=off", u64::MAX),
        ("recursion=always", 1),
    ] {
        let cfg = HyParConfig {
            recursion_edge_threshold: threshold,
            ..ctx.hypar()
        };
        let r = run_mnd(ctx, &el, nranks, NodePlatform::amd_cluster(), cfg);
        rows.push(AblationRow {
            variant: name.to_string(),
            exe: r.total_time,
            comm: r.comm_time,
            rounds: r.exchange_rounds,
        });
    }
    for (name, combine, mirror) in [
        ("bsp full (combine+mirror)", true, Some(128)),
        ("bsp no-mirror", true, None),
        ("bsp no-combine", false, Some(128)),
    ] {
        let bsp_cfg = BspConfig {
            combine,
            mirror_threshold: mirror,
            ..ctx.bsp()
        };
        let r = pregel_msf(&el, nranks, &NodePlatform::amd_cluster(), &bsp_cfg);
        ctx.check_bsp(&el, &r, name);
        rows.push(AblationRow {
            variant: name.to_string(),
            exe: r.total_time,
            comm: r.comm_time,
            rounds: r.supersteps as usize,
        });
    }
    rows
}

/// Weight-distribution robustness: does the MND-MST vs BSP comparison
/// (and correctness) survive skewed, tied, and degree-correlated weights?
/// The paper assigns unspecified "random weights"; this shows the choice
/// does not drive the result.
pub fn ablation_weights(ctx: &ExpContext, nranks: usize) -> Vec<AblationRow> {
    use mnd_graph::weights::{assign_weights, ALL_DISTRIBUTIONS};
    let base = ctx.graph(Preset::Arabic2005);
    ALL_DISTRIBUTIONS
        .iter()
        .map(|&(name, dist)| {
            let mut el = base.clone();
            assign_weights(&mut el, dist, ctx.seed);
            let mnd = run_mnd(ctx, &el, nranks, NodePlatform::amd_cluster(), ctx.hypar());
            let bsp = run_bsp(ctx, &el, nranks);
            AblationRow {
                variant: format!(
                    "{name} (vs BSP: {:.0}% faster)",
                    100.0 * (1.0 - mnd.total_time / bsp.total_time)
                ),
                exe: mnd.total_time,
                comm: mnd.comm_time,
                rounds: mnd.exchange_rounds,
            }
        })
        .collect()
}

/// §3.1 locality ablation: the same graph with (a) its natural vertex
/// order, (b) scrambled ids (locality destroyed), and (c) scrambled then
/// BFS-relabelled (locality partially restored). Demonstrates *causally*
/// that MND-MST's advantage rides on 1D locality, the paper's premise for
/// contiguous partitioning.
pub fn ablation_locality(ctx: &ExpContext, nranks: usize) -> Vec<AblationRow> {
    use mnd_graph::presets::scramble_ids;
    use mnd_graph::transform::bfs_relabel;
    let base = ctx.graph(Preset::Arabic2005);
    let scrambled = scramble_ids(&base, ctx.seed ^ 0xBEEF);
    let restored = bfs_relabel(&scrambled);
    [
        ("natural order", &base),
        ("scrambled ids", &scrambled),
        ("bfs-relabelled", &restored),
    ]
    .into_iter()
    .map(|(name, el)| {
        let r = run_mnd(ctx, el, nranks, NodePlatform::amd_cluster(), ctx.hypar());
        AblationRow {
            variant: format!(
                "{name} (cut@{nranks}: {:.0}%)",
                100.0 * mnd_graph::gen::cut_fraction(el, nranks as u32)
            ),
            exe: r.total_time,
            comm: r.comm_time,
            rounds: r.exchange_rounds,
        }
    })
    .collect()
}

/// Interconnect sensitivity: the same MND-MST run over Ethernet, Aries,
/// and a 10x-degraded network — how much of the divide-and-conquer win
/// survives a slow fabric (all of it should: the design minimises rounds).
pub fn ablation_network(ctx: &ExpContext, nranks: usize) -> Vec<AblationRow> {
    use mnd_net::CostModel;
    let el = ctx.graph(Preset::Arabic2005);
    let slow = CostModel {
        latency: 500e-6,
        bandwidth: 0.1e9,
        overhead: 50e-6,
        byte_scale: 1.0,
    };
    [
        (
            "gigabit ethernet (AMD cluster)",
            CostModel::default_cluster(),
        ),
        ("cray aries", CostModel::cray_aries()),
        ("10x degraded network", slow),
    ]
    .into_iter()
    .map(|(name, network)| {
        let mut platform = NodePlatform::amd_cluster();
        platform.network = network;
        let r = run_mnd(ctx, &el, nranks, platform, ctx.hypar());
        AblationRow {
            variant: name.to_string(),
            exe: r.total_time,
            comm: r.comm_time,
            rounds: r.exchange_rounds,
        }
    })
    .collect()
}

/// §4.3.1 calibration report per graph.
#[derive(Clone, Debug)]
pub struct CalibrationRow {
    /// Graph name.
    pub graph: &'static str,
    /// Average GPU:CPU speed ratio over the samples.
    pub gpu_speedup: f64,
    /// CPU share of the intra-node partition.
    pub cpu_fraction: f64,
    /// Whether GPU memory clipped the split.
    pub memory_limited: bool,
}

/// Regenerates the §4.3.1 calibration table for all presets.
pub fn calibration(ctx: &ExpContext) -> Vec<CalibrationRow> {
    let plat = NodePlatform::cray_xc40(true);
    Preset::ALL
        .iter()
        .map(|&p| {
            let el = ctx.graph(p);
            let g = CsrGraph::from_edge_list(&el);
            let cfg = ctx.hypar();
            let split = calibrate_split(
                &g,
                &plat.cpu.clone().scaled(cfg.sim_scale),
                &plat.gpu.clone().expect("cray gpu").scaled(cfg.sim_scale),
                cfg.calibration_samples,
                cfg.calibration_frac,
                cfg.seed,
            );
            CalibrationRow {
                graph: p.name(),
                gpu_speedup: split.gpu_speedup,
                cpu_fraction: split.cpu_fraction,
                memory_limited: split.memory_limited,
            }
        })
        .collect()
}

// --------------------------------------------------------------------- //
// Kernel sweep: seq vs par holding-plane kernels
// --------------------------------------------------------------------- //

/// One seq-vs-par wall-clock measurement of a holding-plane kernel, for one
/// parallel variant (`chunk-merge` or `lockfree`).
#[derive(Clone, Debug)]
pub struct KernelSweepRow {
    /// Kernel name (`min_edge_scan`, `reduce_holding`, `incident_counts`).
    pub kernel: &'static str,
    /// Parallel variant this row measured: `chunk-merge` or `lockfree`.
    pub variant: &'static str,
    /// Holding size in edges.
    pub rows: usize,
    /// Chunk size of the best parallel run.
    pub chunk: usize,
    /// Sequential nanoseconds (best of 3).
    pub seq_ns: u64,
    /// Best parallel nanoseconds across the chunk candidates (best of 3).
    pub par_ns: u64,
    /// True when the calibrated policy would actually route this kernel at
    /// this size down this variant's parallel path — the rows
    /// `bench_check.sh` gates against sub-1.0× speedups.
    pub selected: bool,
}

impl KernelSweepRow {
    /// Seq/par speedup (>1 means the parallel path wins).
    pub fn speedup(&self) -> f64 {
        self.seq_ns as f64 / self.par_ns.max(1) as f64
    }
}

/// Holding sizes for [`kernel_sweep`]: the largest is above a million edges
/// (the acceptance scale for the parallel plane).
pub const SWEEP_SIZES: [usize; 3] = [1 << 14, 1 << 17, 1 << 20];

fn best_of(k: u32, mut f: impl FnMut() -> std::time::Duration) -> u64 {
    (0..k)
        .map(|_| f().as_nanos() as u64)
        .min()
        .unwrap_or(u64::MAX)
}

/// Measures the holding-plane kernels sequentially and under both parallel
/// variants (chunk-merge and, where implemented, lock-free) on `gnm`
/// holdings of the given sizes. The result is byte-identical every way (the
/// determinism contract); only the wall-clock differs. `policy` is the
/// calibrated policy of the host: each row's `selected` flag records
/// whether that policy would actually route the kernel at that size down
/// that variant — those are the rows the snapshot gate refuses to let
/// regress below 1.0×.
pub fn kernel_sweep(
    seed: u64,
    sizes: &[usize],
    policy: &mnd_kernels::policy::KernelPolicy,
) -> Vec<KernelSweepRow> {
    use mnd_kernels::policy::{KernelClass, KernelPolicy, ParVariant};
    use mnd_kernels::reduce::reduce_holding_with;
    use mnd_kernels::scan::min_edge_scan_with;
    use std::time::Instant;

    let chunks = [1024usize, 4096, 16384];
    let variant_of = |name: &'static str| match name {
        "chunk-merge" => ParVariant::ChunkMerge,
        _ => ParVariant::LockFree,
    };
    let selected = |class: KernelClass, variant: &'static str, m: usize| {
        policy.use_par_for(class, m) && policy.variant_for(class) == variant_of(variant)
    };
    let mut rows = Vec::new();
    for &m in sizes {
        let el = mnd_graph::gen::gnm(((m / 8).max(16)) as u32, m as u64, seed ^ m as u64);
        let cg = mnd_kernels::cgraph::CGraph::from_edge_list(&el);
        let seq = KernelPolicy::seq();

        let best_par =
            |variant: &'static str, f: &mut dyn FnMut(&KernelPolicy) -> std::time::Duration| {
                chunks
                    .iter()
                    .filter(|&&c| c < m)
                    .map(|&c| {
                        let policy = match variant {
                            "chunk-merge" => KernelPolicy::force_par(c),
                            _ => KernelPolicy::force_lockfree(c),
                        };
                        (best_of(3, || f(&policy)), c)
                    })
                    .min()
                    .unwrap_or((u64::MAX, 0))
            };

        let seq_ns = best_of(3, || {
            let t = Instant::now();
            std::hint::black_box(min_edge_scan_with(&cg, &seq));
            t.elapsed()
        });
        for variant in ["chunk-merge", "lockfree"] {
            let (par_ns, chunk) = best_par(variant, &mut |p| {
                let t = Instant::now();
                std::hint::black_box(min_edge_scan_with(&cg, p));
                t.elapsed()
            });
            rows.push(KernelSweepRow {
                kernel: "min_edge_scan",
                variant,
                rows: m,
                chunk,
                seq_ns,
                par_ns,
                selected: selected(KernelClass::Election, variant, m),
            });
        }

        let seq_ns = best_of(3, || {
            let mut c = cg.clone();
            let t = Instant::now();
            std::hint::black_box(reduce_holding_with(&mut c, &seq));
            t.elapsed()
        });
        let (par_ns, chunk) = best_par("chunk-merge", &mut |p| {
            let mut c = cg.clone();
            let t = Instant::now();
            std::hint::black_box(reduce_holding_with(&mut c, p));
            t.elapsed()
        });
        rows.push(KernelSweepRow {
            kernel: "reduce_holding",
            variant: "chunk-merge",
            rows: m,
            chunk,
            seq_ns,
            par_ns,
            selected: selected(KernelClass::Reduce, "chunk-merge", m),
        });

        let seq_ns = best_of(3, || {
            let mut c = cg.clone();
            let t = Instant::now();
            std::hint::black_box(c.incident_counts_with(&seq));
            t.elapsed()
        });
        for variant in ["chunk-merge", "lockfree"] {
            let (par_ns, chunk) = best_par(variant, &mut |p| {
                let mut c = cg.clone();
                let t = Instant::now();
                std::hint::black_box(c.incident_counts_with(p));
                t.elapsed()
            });
            rows.push(KernelSweepRow {
                kernel: "incident_counts",
                variant,
                rows: m,
                chunk,
                seq_ns,
                par_ns,
                selected: selected(KernelClass::Count, variant, m),
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Chaos: fault-plane overhead sweep
// --------------------------------------------------------------------- //

/// Runs MND-MST under a fault plan (message faults + phase-level chaos),
/// verified against the oracle — a chaotic run must still produce the
/// exact MSF.
pub fn run_mnd_chaos(
    ctx: &ExpContext,
    el: &EdgeList,
    nranks: usize,
    platform: NodePlatform,
    plan: Arc<FaultPlan>,
) -> MndMstReport {
    run_mnd_chaos_cfg(ctx, el, nranks, platform, ctx.hypar(), plan)
}

/// [`run_mnd_chaos`] with an explicit base config, so sweeps can combine a
/// fault plan with non-default communication knobs (sparse/dense exchange,
/// compression, filter sampling).
pub fn run_mnd_chaos_cfg(
    ctx: &ExpContext,
    el: &EdgeList,
    nranks: usize,
    platform: NodePlatform,
    cfg: HyParConfig,
    plan: Arc<FaultPlan>,
) -> MndMstReport {
    let cfg = cfg.with_chaos(plan.clone());
    let r = MndMstRunner::new(nranks)
        .with_platform(platform)
        .with_config(cfg)
        .with_fault_injector(plan)
        .run(el);
    ctx.check_mnd(el, &r, "run_mnd_chaos");
    r
}

/// One row of the chaos sweep.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Fault-plan label.
    pub plan: String,
    /// Execution time under faults (simulated seconds, paper scale).
    pub exe: f64,
    /// Slowdown relative to the fault-free run (`exe/baseline - 1`).
    pub overhead: f64,
    /// Total forced retransmissions across ranks.
    pub retries: u64,
    /// Total discarded duplicate arrivals across ranks.
    pub redeliveries: u64,
    /// Total checkpoint restores (injected crashes recovered).
    pub restores: u64,
    /// Total virtual seconds lost to injected stalls.
    pub stall: f64,
    /// Compute seconds re-executed during rollback recovery (charged).
    pub replayed_compute: f64,
    /// Inbound bytes served from replay logs (not re-charged).
    pub replayed_in_bytes: u64,
}

/// The chaos sweep: the same run under increasingly hostile fault plans,
/// reporting recovery overhead over the fault-free baseline. Every run —
/// drops, delays, duplicates, a boundary crash, a mid-phase crash replayed
/// from the previous checkpoint, a dead merge leader — still produces the
/// oracle MSF.
pub fn chaos(ctx: &ExpContext, nranks: usize) -> Vec<ChaosRow> {
    let el = ctx.graph(Preset::RoadUsa);
    let platform = NodePlatform::amd_cluster();
    let baseline = run_mnd(ctx, &el, nranks, platform.clone(), ctx.hypar());

    let crash_rank = 1 % nranks;
    let plans: Vec<(&str, FaultPlan)> = vec![
        ("fault-free (chaos armed)", FaultPlan::new(ctx.seed)),
        ("drop 1%", FaultPlan::new(ctx.seed).with_drop_rate(0.01)),
        ("drop 10%", FaultPlan::new(ctx.seed).with_drop_rate(0.10)),
        (
            "delay 20% <=1ms",
            FaultPlan::new(ctx.seed).with_delay(0.2, 1e-3),
        ),
        (
            "dup+reorder 5%",
            FaultPlan::new(ctx.seed)
                .with_duplicates(0.05)
                .with_reorder(0.05),
        ),
        (
            "crash+restart, drop 1%",
            FaultPlan::new(ctx.seed)
                .with_drop_rate(0.01)
                .with_crash(crash_rank, 1),
        ),
        (
            "mid-phase crash @indComp",
            FaultPlan::new(ctx.seed).with_mid_phase_crash(crash_rank, 1, 3),
        ),
        (
            "dead leader @L1, drop 1%",
            FaultPlan::new(ctx.seed)
                .with_drop_rate(0.01)
                .with_dead_leader(0, 1),
        ),
    ];

    let mut rows = vec![ChaosRow {
        plan: "no fault plane".into(),
        exe: baseline.total_time,
        overhead: 0.0,
        retries: 0,
        redeliveries: 0,
        restores: 0,
        stall: 0.0,
        replayed_compute: 0.0,
        replayed_in_bytes: 0,
    }];
    for (name, plan) in plans {
        let r = run_mnd_chaos(ctx, &el, nranks, platform.clone(), Arc::new(plan));
        rows.push(ChaosRow {
            plan: name.to_string(),
            exe: r.total_time,
            overhead: r.total_time / baseline.total_time - 1.0,
            retries: r.rank_stats.iter().map(|s| s.retries).sum(),
            redeliveries: r.rank_stats.iter().map(|s| s.redeliveries).sum(),
            restores: r.rank_stats.iter().map(|s| s.checkpoint_restores).sum(),
            stall: r.rank_stats.iter().map(|s| s.stall_time).sum(),
            replayed_compute: r.rank_stats.iter().map(|s| s.replayed_compute).sum(),
            replayed_in_bytes: r.rank_stats.iter().map(|s| s.replayed_in_bytes).sum(),
        });
    }
    rows
}

// --------------------------------------------------------------------- //
// Resilience: every registered engine under the same fault schedule
// --------------------------------------------------------------------- //

/// Builds the engine registry at the context's scale: the D&C config
/// carries the context's observer and kernel policy, and every engine
/// shares the platform and simulation scale.
pub fn engines_for(ctx: &ExpContext, nranks: usize) -> Vec<Box<dyn Engine>> {
    let mut params = EngineParams::new(nranks);
    params.hypar = ctx.hypar();
    params.bsp = ctx.bsp();
    params.spmsf.sim_scale = ctx.scale as f64;
    registry(&params)
}

/// One row of the resilience comparison (one engine under one plan).
#[derive(Clone, Debug)]
pub struct ResilienceRow {
    /// Engine label ([`Engine::name`]): `"mnd-mst"`, `"bsp"`, `"spmsf"`.
    pub engine: &'static str,
    /// Fault-plan label (shared across engines).
    pub plan: String,
    /// Execution time under faults (simulated seconds, paper scale).
    pub exe: f64,
    /// Recovery time: `exe - baseline` for this engine (simulated s).
    pub recovery: f64,
    /// Slowdown relative to this engine's fault-free run.
    pub overhead: f64,
    /// Total checkpoint restores across ranks.
    pub restores: u64,
    /// Total virtual seconds lost to stalls and restarts.
    pub stall: f64,
    /// Compute seconds re-executed during rollback (charged).
    pub replayed_compute: f64,
    /// Inbound bytes served from replay logs (not re-charged).
    pub replayed_in_bytes: u64,
    /// Work units re-executed at live cost: rolled-back epochs for the
    /// D&C engine, supersteps for BSP, collective steps for min-plus.
    pub reexec: u64,
}

/// The resilience comparison (DESIGN.md §5g/§6): every registered engine
/// runs the same graph under the *same* fault plans — the
/// apples-to-apples counterpart of the performance comparison, measuring
/// what a fault costs each execution model. Every run must produce the
/// oracle MSF, and because suppressed re-sends and replayed receives
/// bypass the fabric counters, each faulted run's logical traffic must
/// equal its engine's chaos-armed fault-free baseline on every rank
/// (asserted when `ctx.verify`).
pub fn resilience(ctx: &ExpContext, nranks: usize) -> Vec<ResilienceRow> {
    let el = ctx.graph(Preset::RoadUsa);
    let oracle = if ctx.verify {
        Some(kruskal_msf(&el))
    } else {
        None
    };

    let crash_rank = 1 % nranks;
    let make_plans = || -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("fault-free (chaos armed)", FaultPlan::new(ctx.seed)),
            ("drop 2%", FaultPlan::new(ctx.seed).with_drop_rate(0.02)),
            (
                "dup+reorder 5%",
                FaultPlan::new(ctx.seed)
                    .with_duplicates(0.05)
                    .with_reorder(0.05),
            ),
            (
                "mid-phase crash @epoch 1",
                FaultPlan::new(ctx.seed).with_mid_phase_crash(crash_rank, 1, 3),
            ),
        ]
    };

    let assert_logical_traffic =
        |engine: &str, plan: &str, faulted: &[mnd_net::RankStats], base: &[mnd_net::RankStats]| {
            if !ctx.verify {
                return;
            }
            for (rank, (f, b)) in faulted.iter().zip(base).enumerate() {
                assert_eq!(
                    (
                        f.bytes_sent,
                        f.messages_sent,
                        f.bytes_received,
                        f.messages_received
                    ),
                    (
                        b.bytes_sent,
                        b.messages_sent,
                        b.bytes_received,
                        b.messages_received
                    ),
                    "{engine} under '{plan}': rank {rank} logical traffic diverged from fault-free"
                );
            }
        };

    let mut rows = Vec::new();
    for engine in engines_for(ctx, nranks) {
        let base = engine.run(&el);
        if let Some(o) = &oracle {
            assert_eq!(
                &base.msf,
                o,
                "{}: fault-free result != oracle",
                engine.name()
            );
        }
        // Logical-traffic baseline: the chaos-*armed* fault-free run (the
        // first plan). Arming the plane adds a little real coordination
        // traffic at recovery points, so the byte-match contract is
        // against the armed run — faults and recovery on top of it must
        // add nothing.
        let mut traffic_base: Option<Vec<mnd_net::RankStats>> = None;
        for (name, plan) in make_plans() {
            let mut chaos = EngineChaos::from_plan(Arc::new(plan));
            if ctx.observer.is_set() {
                chaos = chaos.with_observer(ctx.observer.clone());
            }
            let r = engine.run_chaos(&el, &chaos);
            if let Some(o) = &oracle {
                assert_eq!(
                    &r.msf,
                    o,
                    "{} under '{name}': result != oracle",
                    engine.name()
                );
            }
            match &traffic_base {
                None => traffic_base = Some(r.rank_stats.clone()),
                Some(b) => assert_logical_traffic(engine.name(), name, &r.rank_stats, b),
            }
            rows.push(ResilienceRow {
                engine: engine.name(),
                plan: name.to_string(),
                exe: r.total_time,
                recovery: r.total_time - base.total_time,
                overhead: r.total_time / base.total_time - 1.0,
                restores: r.sum_stat(|s| s.checkpoint_restores),
                stall: r.rank_stats.iter().map(|s| s.stall_time).sum(),
                replayed_compute: r.rank_stats.iter().map(|s| s.replayed_compute).sum(),
                replayed_in_bytes: r.sum_stat(|s| s.replayed_in_bytes),
                reexec: r.recovered_units,
            });
        }
    }
    rows
}

// --------------------------------------------------------------------- //
// Checkpoint sweep: overhead vs recovery cost across cadences
// --------------------------------------------------------------------- //

/// One row of the checkpoint-cadence sweep (one engine at one interval).
#[derive(Clone, Debug)]
pub struct CheckpointSweepRow {
    /// Engine label ([`Engine::name`]).
    pub engine: &'static str,
    /// Recovery opportunities between checkpoints.
    pub interval: u64,
    /// Chaos-armed fault-free execution time (carries the checkpoint
    /// overhead of this cadence and nothing else).
    pub clean_exe: f64,
    /// Checkpoint writes across ranks at this cadence.
    pub writes: u64,
    /// Checkpoint bytes written across ranks in the clean run — the
    /// column the spmsf delta-encoding saving shows up in.
    pub ckpt_bytes: u64,
    /// Execution time with a mid-phase crash injected.
    pub crash_exe: f64,
    /// Recovery cost: `crash_exe - clean_exe`.
    pub recovery: f64,
    /// Checkpoint restores across ranks (0 = the plan's crash window
    /// never opened at this cadence — the run never reached epoch 1).
    pub restores: u64,
    /// Work units re-executed at live cost after the crash.
    pub reexec: u64,
    /// Compute seconds re-executed during rollback (charged).
    pub replayed_compute: f64,
}

/// The checkpoint-cadence sweep: every registered engine, chaos-armed, at
/// increasing checkpoint intervals — fault-free (isolating checkpoint
/// overhead) and under the same mid-phase crash (measuring how much
/// re-execution a sparser cadence buys back). The classic recovery
/// trade-off chart, three engines wide, plus an `spmsf-full` arm per
/// interval: the min-plus engine with delta-encoded component
/// checkpoints disabled, so the bytes column shows exactly what the
/// delta scheme saves (asserted when `ctx.verify`: same write count,
/// fewer bytes, cheaper armed run).
pub fn checkpoint_sweep(ctx: &ExpContext, nranks: usize) -> Vec<CheckpointSweepRow> {
    let el = ctx.graph(Preset::RoadUsa);
    let oracle = if ctx.verify {
        Some(kruskal_msf(&el))
    } else {
        None
    };
    let crash_rank = 1 % nranks;

    let run_one = |label: &'static str, engine: &dyn Engine, interval: u64| {
        let clean = engine.run_chaos(
            &el,
            &EngineChaos::from_plan(Arc::new(FaultPlan::new(ctx.seed))),
        );
        let crash = engine.run_chaos(
            &el,
            &EngineChaos::from_plan(Arc::new(
                FaultPlan::new(ctx.seed).with_mid_phase_crash(crash_rank, 1, 3),
            )),
        );
        if let Some(o) = &oracle {
            assert_eq!(&clean.msf, o, "{label} clean@{interval} != oracle");
            assert_eq!(&crash.msf, o, "{label} crash@{interval} != oracle");
        }
        CheckpointSweepRow {
            engine: label,
            interval,
            clean_exe: clean.total_time,
            writes: clean.sum_stat(|s| s.checkpoint_writes),
            ckpt_bytes: clean.sum_stat(|s| s.checkpoint_bytes),
            crash_exe: crash.total_time,
            recovery: crash.total_time - clean.total_time,
            restores: crash.sum_stat(|s| s.checkpoint_restores),
            reexec: crash.recovered_units,
            replayed_compute: crash.rank_stats.iter().map(|s| s.replayed_compute).sum(),
        }
    };

    let mut rows = Vec::new();
    for interval in [1u64, 2, 4, 8] {
        let mut params = EngineParams::new(nranks);
        params.hypar = ctx.hypar();
        params.bsp = ctx.bsp();
        params.spmsf.sim_scale = ctx.scale as f64;
        let params = params.with_checkpoint_interval(interval);
        for engine in registry(&params) {
            rows.push(run_one(engine.name(), engine.as_ref(), interval));
        }
        // The delta-encoding comparison arm: same engine, same cadence,
        // full O(V) component vectors in every checkpoint.
        let mut full_cfg = params.spmsf.clone();
        full_cfg.delta_checkpoints = false;
        let full_engine = SpmsfEngine {
            nranks,
            platform: params.platform.clone(),
            cfg: full_cfg,
        };
        let full = run_one("spmsf-full", &full_engine, interval);
        if ctx.verify {
            let slim = rows
                .iter()
                .rev()
                .find(|r| r.engine == "spmsf" && r.interval == interval)
                .expect("spmsf row pushed above");
            assert_eq!(
                slim.writes, full.writes,
                "delta encoding must not change the checkpoint cadence"
            );
            // Delta segments fall back to the base encoding whenever the
            // accumulated rewrites would outweigh the full vector, so
            // the scheme never writes more...
            assert!(
                slim.ckpt_bytes <= full.ckpt_bytes,
                "delta checkpoints@{interval}: {} bytes > {} full bytes",
                slim.ckpt_bytes,
                full.ckpt_bytes
            );
            assert!(
                slim.clean_exe <= full.clean_exe,
                "delta checkpoints@{interval} made the armed run dearer"
            );
            // ...and at the per-boundary cadence (where most segments
            // rewrite little or nothing) it must save outright.
            if interval == 1 && slim.writes > nranks as u64 {
                assert!(
                    slim.ckpt_bytes < full.ckpt_bytes,
                    "delta checkpoints@1: {} bytes !< {} full bytes",
                    slim.ckpt_bytes,
                    full.ckpt_bytes
                );
                assert!(
                    slim.clean_exe < full.clean_exe,
                    "delta checkpoints@1 did not cut the armed overhead"
                );
            }
        }
        rows.push(full);
    }
    rows
}

// --------------------------------------------------------------------- //
// Engines: the registry listing
// --------------------------------------------------------------------- //

/// One row of the `repro engines` listing.
#[derive(Clone, Debug)]
pub struct EngineListRow {
    /// Registry name ([`Engine::name`]).
    pub name: &'static str,
    /// One-line description ([`Engine::description`]).
    pub description: &'static str,
}

/// Lists every registered engine with its one-line description.
pub fn engine_list(ctx: &ExpContext, nranks: usize) -> Vec<EngineListRow> {
    engines_for(ctx, nranks)
        .iter()
        .map(|e| EngineListRow {
            name: e.name(),
            description: e.description(),
        })
        .collect()
}

// --------------------------------------------------------------------- //
// Serve sweep: the multi-tenant serving plane under a mixed workload
// --------------------------------------------------------------------- //

/// The deterministic mixed workload `serve_sweep` drives through the
/// serving plane.
pub struct ServeWorkload {
    /// Tenant table: `interactive` (weight 4, deep queue), `batch`
    /// (weight 1, queue bound 3), `updates` (weight 2).
    pub tenants: Vec<TenantSpec>,
    /// Timed submissions.
    pub jobs: Vec<JobSpec>,
    /// The updates tenant's session graph after every mutation batch —
    /// the oracle input for the final incremental forest.
    pub final_graph: EdgeList,
}

/// Builds the mixed workload: an interactive tenant re-submitting the
/// same road-network MST/CC/BFS queries (cache fodder — wave one is
/// cold, everything after hits the fingerprint cache), a batch tenant
/// bursting six distinct ad-hoc graphs at `t = 0` past its admission
/// bound of three (three rejections, on the record), and an updates
/// tenant streaming six insert/delete batches into its incremental-MSF
/// session. A mirror edge map tracks the session's final graph so
/// `serve_sweep` can oracle-check the last update's forest against a
/// full Kruskal recompute.
///
/// The update session runs over a *dense* graph (`E = 32·V`) on
/// purpose: incremental maintenance touches `O(V)` per tree search
/// while a recompute reads all `E` edges over several rounds plus the
/// cluster's communication constants, so density is what separates the
/// two honestly. (On a road-like graph with `E ≈ 1.2·V` the per-op
/// searches rival a recompute — the simulation reproduces that, so the
/// sweep does not claim it.)
pub fn serve_workload(ctx: &ExpContext) -> ServeWorkload {
    let road = Arc::new(ctx.graph(Preset::RoadUsa));
    let n = road.num_vertices();
    let tenants = vec![
        TenantSpec::new("interactive", 4.0, 16),
        TenantSpec::new("batch", 1.0, 3),
        TenantSpec::new("updates", 2.0, 16),
    ];
    let mut jobs = Vec::new();
    for wave in 0..4 {
        let t = wave as f64 * 0.5;
        for (dt, kind) in [
            (0.0, JobKind::Mst),
            (0.1, JobKind::Cc),
            (0.2, JobKind::Bfs { source: 0 }),
        ] {
            jobs.push(JobSpec {
                tenant: 0,
                kind,
                graph: road.clone(),
                submit: t + dt,
            });
        }
    }
    let bn = (n / 2).max(64);
    for i in 0..6u64 {
        let g = Arc::new(mnd_graph::gen::gnm(
            bn,
            bn as u64 * 3,
            ctx.seed ^ (0xB0B0 + i),
        ));
        jobs.push(JobSpec {
            tenant: 1,
            kind: JobKind::Mst,
            graph: g,
            submit: 0.0,
        });
    }
    // Update batches: 4 inserts + 2 deletes each, drawn from a
    // splitmix64 stream seeded by the context. Inserts are applied
    // before deletes in a batch, exactly as the session executes them.
    let sn = (n / 2).max(64);
    let session = Arc::new(mnd_graph::gen::gnm(sn, sn as u64 * 32, ctx.seed ^ 0xD1CE));
    let mut mirror: BTreeMap<(VertexId, VertexId), Weight> =
        session.edges().iter().map(|e| ((e.u, e.v), e.w)).collect();
    let mut z = ctx.seed ^ 0x5EED_CAFE;
    let mut next = move || {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mnd_graph::edgelist::splitmix64(z)
    };
    for batch in 0..6 {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..4 {
            let u = (next() % sn as u64) as VertexId;
            let mut v = (next() % sn as u64) as VertexId;
            if v == u {
                v = (v + 1) % sn;
            }
            let w = (next() % 1_000_000) as Weight;
            let (a, b) = (u.min(v), u.max(v));
            inserts.push(WEdge::new(a, b, w));
            mirror.insert((a, b), w);
        }
        for _ in 0..2 {
            if mirror.is_empty() {
                break;
            }
            let keys: Vec<(VertexId, VertexId)> = mirror.keys().copied().collect();
            let k = keys[(next() % keys.len() as u64) as usize];
            deletes.push(k);
            mirror.remove(&k);
        }
        jobs.push(JobSpec {
            tenant: 2,
            kind: JobKind::Update { inserts, deletes },
            graph: session.clone(),
            submit: 1.0 + batch as f64,
        });
    }
    let final_graph = EdgeList::from_raw(
        sn,
        mirror
            .iter()
            .map(|(&(u, v), &w)| WEdge::new(u, v, w))
            .collect(),
    );
    ServeWorkload {
        tenants,
        jobs,
        final_graph,
    }
}

/// One per-tenant row of the serve sweep (one plane run × one tenant).
#[derive(Clone, Debug)]
pub struct ServeTenantRow {
    /// Plane label: `"<engine>/incremental"` or `"mnd-mst/recompute"`.
    pub plane: String,
    /// Tenant name.
    pub tenant: String,
    /// Fair-share weight.
    pub weight: f64,
    /// Jobs submitted (admitted + rejected).
    pub submitted: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Completions served from the result cache.
    pub cache_hits: usize,
    /// Median latency (simulated seconds at paper scale).
    pub p50: f64,
    /// 95th-percentile latency.
    pub p95: f64,
    /// 99th-percentile latency.
    pub p99: f64,
    /// Completed jobs per simulated second.
    pub throughput: f64,
}

/// One summary row per plane run of the serve sweep.
#[derive(Clone, Debug)]
pub struct ServePlaneRow {
    /// Plane label (backend engine / update mode).
    pub plane: String,
    /// Jobs completed across tenants.
    pub completed: usize,
    /// Jobs refused at admission.
    pub rejected: usize,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Simulated seconds of cold compute the cache hits avoided.
    pub saved: f64,
    /// Total execution seconds of the update jobs — the
    /// incremental-vs-recompute comparison column.
    pub update_exec: f64,
    /// Completion time of the last job.
    pub makespan: f64,
    /// Rank-seconds of execution over `makespan × nranks` capacity.
    pub utilisation: f64,
}

/// The serve sweep's two tables.
pub struct ServeSweep {
    /// Per-tenant latency/throughput rows.
    pub tenants: Vec<ServeTenantRow>,
    /// Per-plane cache/update summaries.
    pub planes: Vec<ServePlaneRow>,
}

/// Runs the workload through one backend engine in one update mode.
fn serve_run(
    ctx: &ExpContext,
    nranks: usize,
    engine: &'static str,
    mode: UpdateMode,
    wl: &ServeWorkload,
) -> ServeReport {
    let ctx2 = ctx.clone();
    let backend = EngineBackend::new(
        engine,
        NodePlatform::amd_cluster(),
        ctx.scale as f64,
        move |ranks| {
            let mut params = EngineParams::new(ranks);
            params.hypar = ctx2.hypar();
            params.bsp = ctx2.bsp();
            params.spmsf.sim_scale = ctx2.scale as f64;
            registry(&params)
                .into_iter()
                .find(|e| e.name() == engine)
                .expect("engine registered")
        },
    );
    let cfg = ServeConfig::new(nranks).with_update_mode(mode);
    let mut plane = ServePlane::new(cfg, Box::new(backend), wl.tenants.clone());
    plane.run(wl.jobs.clone())
}

/// The serve sweep (the serving-plane tentpole experiment): the mixed
/// three-tenant workload through every registered backend engine with
/// incremental update sessions, plus a recompute-mode arm on the default
/// engine as the comparison baseline. When `ctx.verify`, every run's
/// final session forest must byte-match a full Kruskal recompute of the
/// mutated graph, the incremental and recompute arms must agree
/// job-for-job on every update result, incremental updates must cost
/// less than recomputes, and the cache-hit/rejection counts implied by
/// the workload shape are asserted.
pub fn serve_sweep(ctx: &ExpContext, nranks: usize) -> ServeSweep {
    let wl = serve_workload(ctx);
    let oracle = if ctx.verify {
        Some(kruskal_msf(&wl.final_graph))
    } else {
        None
    };
    let engine_names: Vec<&'static str> =
        engines_for(ctx, nranks).iter().map(|e| e.name()).collect();

    let mut runs: Vec<(String, ServeReport)> = Vec::new();
    for name in &engine_names {
        runs.push((
            format!("{name}/incremental"),
            serve_run(ctx, nranks, name, UpdateMode::Incremental, &wl),
        ));
    }
    runs.push((
        "mnd-mst/recompute".into(),
        serve_run(ctx, nranks, "mnd-mst", UpdateMode::Recompute, &wl),
    ));

    let update_forests = |r: &ServeReport| -> BTreeMap<usize, mnd_kernels::msf::MsfResult> {
        r.completions
            .iter()
            .filter(|c| c.kind == "update")
            .map(|c| match &c.result {
                JobResult::Msf(m) => (c.job, (**m).clone()),
                _ => unreachable!("update jobs return forests"),
            })
            .collect()
    };
    let update_exec = |r: &ServeReport| -> f64 {
        r.completions
            .iter()
            .filter(|c| c.kind == "update")
            .map(|c| c.exec_seconds)
            .sum()
    };

    if ctx.verify {
        for (plane, report) in &runs {
            assert_eq!(
                report.completed() + report.rejected,
                wl.jobs.len(),
                "{plane}: jobs lost"
            );
            assert!(
                report.cache.hits > 0,
                "{plane}: the repeat-heavy workload must produce cache hits"
            );
            assert_eq!(
                report.rejected, 3,
                "{plane}: the batch burst must overflow its admission bound"
            );
            let last = report
                .completions
                .iter()
                .filter(|c| c.kind == "update")
                .max_by_key(|c| c.job)
                .expect("update jobs completed");
            let JobResult::Msf(msf) = &last.result else {
                unreachable!("update jobs return forests")
            };
            assert_eq!(
                &**msf,
                oracle.as_ref().unwrap(),
                "{plane}: final session forest != full-recompute oracle"
            );
        }
        // Incremental maintenance must agree with recompute job-for-job
        // and beat it on cost.
        let inc = &runs[0].1;
        let rec = &runs.last().unwrap().1;
        assert_eq!(
            update_forests(inc),
            update_forests(rec),
            "incremental vs recompute: update forests diverge"
        );
        assert!(
            update_exec(inc) < update_exec(rec),
            "incremental updates must cost less than full recomputes"
        );
    }

    let mut sweep = ServeSweep {
        tenants: Vec::new(),
        planes: Vec::new(),
    };
    for (plane, report) in &runs {
        for (spec, t) in wl.tenants.iter().zip(&report.tenants) {
            sweep.tenants.push(ServeTenantRow {
                plane: plane.clone(),
                tenant: t.name.clone(),
                weight: spec.weight,
                submitted: t.submitted,
                completed: t.completed,
                rejected: t.rejected,
                cache_hits: t.cache_hits,
                p50: t.p50,
                p95: t.p95,
                p99: t.p99,
                throughput: t.throughput,
            });
        }
        sweep.planes.push(ServePlaneRow {
            plane: plane.clone(),
            completed: report.completed(),
            rejected: report.rejected,
            cache_hits: report.cache.hits,
            cache_misses: report.cache.misses,
            saved: report.cache.saved_seconds,
            update_exec: update_exec(report),
            makespan: report.makespan,
            utilisation: report.utilisation,
        });
    }
    sweep
}

// --------------------------------------------------------------------- //
// Traffic: per-tag byte/message/fault breakdown
// --------------------------------------------------------------------- //

/// One row of the per-tag traffic table (summed over ranks).
#[derive(Clone, Debug)]
pub struct TrafficRow {
    /// Tag label ([`Tag::name`], annotated for the driver's user tags).
    pub tag: String,
    /// Payload bytes sent under the tag.
    pub bytes_sent: u64,
    /// Messages sent under the tag.
    pub messages: u64,
    /// Forced retransmissions under the tag.
    pub retries: u64,
    /// Discarded duplicate arrivals under the tag.
    pub redeliveries: u64,
}

/// Labels a tag for the traffic table: collectives by name, plus the
/// driver's two user tags (ring segments / leader merges).
fn tag_label(tag: Tag) -> String {
    match tag.name().as_str() {
        "user(1)" => "segments (user 1)".into(),
        "user(2)" => "leader merge (user 2)".into(),
        other => other.into(),
    }
}

/// Per-tag traffic of one MND run under a lightly faulty fabric (2% drop,
/// 2% duplicates — so the retry/redelivery columns are exercised), summed
/// over ranks and sorted by bytes sent.
pub fn traffic(ctx: &ExpContext, nranks: usize) -> Vec<TrafficRow> {
    let el = ctx.graph(Preset::RoadUsa);
    let plan = Arc::new(
        FaultPlan::new(ctx.seed)
            .with_drop_rate(0.02)
            .with_duplicates(0.02),
    );
    // Force real ring exchanges even on scaled-down graphs: the per-tag
    // table should cover the segment tag, not just the leader merge.
    let mut cfg = ctx.hypar().with_chaos(plan.clone());
    cfg.group_edge_threshold = 1;
    let r = MndMstRunner::new(nranks)
        .with_platform(NodePlatform::amd_cluster())
        .with_config(cfg)
        .with_fault_injector(plan)
        .run(&el);
    ctx.check_mnd(&el, &r, "traffic");

    let mut by_tag: std::collections::BTreeMap<Tag, TrafficRow> = std::collections::BTreeMap::new();
    for s in &r.rank_stats {
        for (tag, t) in &s.by_tag {
            let row = by_tag.entry(*tag).or_insert_with(|| TrafficRow {
                tag: tag_label(*tag),
                bytes_sent: 0,
                messages: 0,
                retries: 0,
                redeliveries: 0,
            });
            row.bytes_sent += t.bytes_sent;
            row.messages += t.messages_sent;
            row.retries += t.retries;
            row.redeliveries += t.redeliveries;
        }
    }
    let mut rows: Vec<TrafficRow> = by_tag.into_values().collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.bytes_sent));
    rows
}

// --------------------------------------------------------------------- //
// Comm-sweep: sparse exchanges, compression, filter-Boruvka (DESIGN.md §8)
// --------------------------------------------------------------------- //

/// One comm-sweep row: the whole-run traffic of one verified configuration.
#[derive(Clone, Debug)]
pub struct CommSweepRow {
    /// Preset name.
    pub preset: &'static str,
    /// Variant label (which communication knobs are on).
    pub variant: String,
    /// Total messages sent across ranks (all tags).
    pub messages: u64,
    /// Total wire bytes sent across ranks, in MB.
    pub wire_mb: f64,
    /// Messages on the `alltoall` payload tag.
    pub payload_msgs: u64,
    /// Messages on the `sparse_hdr` header tag.
    pub header_msgs: u64,
    /// Execution time (simulated seconds, paper scale).
    pub exe: f64,
}

/// Sums one tag's sent messages over all ranks of a report.
fn tag_messages(r: &MndMstReport, name: &str) -> u64 {
    r.rank_stats
        .iter()
        .flat_map(|s| &s.by_tag)
        .filter(|(tag, _)| tag.name() == name)
        .map(|(_, t)| t.messages_sent)
        .sum()
}

/// The communication-engineering sweep (ROADMAP item 4): the same skewed
/// web-crawl runs under dense exchanges (the old always-send path), the
/// sparse schedule, sparse + compressed relabeling, and sparse + compression
/// with filter-Boruvka sampling — plus the full stack under a hostile fault
/// plan (drops and a mid-phase crash replayed from checkpoint). Every run
/// is verified against the Kruskal oracle, so the table demonstrates the
/// bytes/messages shed at **unchanged** output.
pub fn comm_sweep(ctx: &ExpContext, nranks: usize) -> Vec<CommSweepRow> {
    let platform = NodePlatform::amd_cluster();
    let variants: Vec<(&str, HyParConfig)> = vec![
        (
            "dense",
            ctx.hypar()
                .with_sparse_exchange(false)
                .with_compressed_relabels(false),
        ),
        (
            "sparse",
            ctx.hypar()
                .with_sparse_exchange(true)
                .with_compressed_relabels(false),
        ),
        ("sparse+pack", ctx.hypar()),
        (
            "sparse+pack+filter(0.25)",
            ctx.hypar().with_filter_sample_prob(0.25),
        ),
    ];
    let mut rows = Vec::new();
    for preset in [Preset::Gsh2015Tpd, Preset::Sk2005] {
        let el = ctx.graph(preset);
        let mut push = |variant: String, r: &MndMstReport| {
            rows.push(CommSweepRow {
                preset: preset.name(),
                variant,
                messages: r.rank_stats.iter().map(|s| s.messages_sent).sum(),
                wire_mb: r.rank_stats.iter().map(|s| s.bytes_sent).sum::<u64>() as f64 / 1e6,
                payload_msgs: tag_messages(r, "alltoall"),
                header_msgs: tag_messages(r, "sparse_hdr"),
                exe: r.total_time,
            });
        };
        for (name, cfg) in &variants {
            let r = run_mnd(ctx, &el, nranks, platform.clone(), cfg.clone());
            push((*name).to_string(), &r);
        }
        // The full stack must survive chaos with the oracle MSF intact:
        // drops force retries over the sparse schedule and a mid-phase
        // crash replays an exchange from the checkpointed replay log.
        let plan = Arc::new(
            FaultPlan::new(ctx.seed)
                .with_drop_rate(0.01)
                .with_mid_phase_crash(1 % nranks, 1, 3),
        );
        let r = run_mnd_chaos_cfg(
            ctx,
            &el,
            nranks,
            platform.clone(),
            ctx.hypar().with_filter_sample_prob(0.25),
            plan,
        );
        push("sparse+pack+filter chaos".to_string(), &r);
    }
    rows
}

/// One row of the recursion-threshold validation (the retired
/// alltoall-sweep item): assumed vs measured per-round exchange messages
/// and the recursion thresholds each implies.
#[derive(Clone, Debug)]
pub struct CommCalibrationRow {
    /// Cluster size.
    pub nranks: usize,
    /// Exchange rounds observed on rank 0 (partition + mergeParts phases).
    pub exchange_rounds: u64,
    /// The calibration model's per-rank per-round message assumption:
    /// `(p − 1) + 2⌈log₂ p⌉`.
    pub assumed_msgs: f64,
    /// Measured per-rank per-round exchange messages (alltoall +
    /// sparse_hdr + phased tags) under the sparse schedule.
    pub measured_msgs: f64,
    /// Recursion threshold from the assumption (paper-scale edges).
    pub assumed_threshold: u64,
    /// Recursion threshold re-derived from the measurement.
    pub measured_threshold: u64,
}

/// Validates `mnd_device::calibrated_recursion_threshold` against the
/// *measured* sparse exchange: an observer counts the exchange rounds
/// (partition + mergeParts samples on rank 0) of a skewed-crawl run, the
/// per-tag tables give the actual exchange messages, and the threshold is
/// re-derived from the measured per-round count. The assumed dense count
/// must be an upper bound once empty buckets stop shipping — confirming
/// the calibrated threshold errs toward recursing *less*, never more.
pub fn comm_calibration(ctx: &ExpContext) -> Vec<CommCalibrationRow> {
    use mnd_hypar::observe::{PhaseKind, PhaseObserver, PhaseSample};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct RoundCounter(AtomicU64);
    impl PhaseObserver for RoundCounter {
        fn on_phase(&self, kind: PhaseKind, sample: &PhaseSample) {
            if sample.rank == 0 && matches!(kind, PhaseKind::Partition | PhaseKind::MergeParts) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    let platform = NodePlatform::amd_cluster();
    let el = ctx.graph(Preset::Gsh2015Tpd);
    let mut rows = Vec::new();
    for nranks in [4usize, 8, 16] {
        let counter = Arc::new(RoundCounter::default());
        let cfg = ctx.hypar().with_observer(counter.clone());
        let r = run_mnd(ctx, &el, nranks, platform.clone(), cfg);
        let rounds = counter.0.load(Ordering::Relaxed).max(1);
        let exchange_msgs: u64 = ["alltoall", "sparse_hdr", "phased"]
            .iter()
            .map(|t| tag_messages(&r, t))
            .sum();
        let measured = exchange_msgs as f64 / nranks as f64 / rounds as f64;
        let assumed = mnd_device::assumed_round_msgs(nranks);
        rows.push(CommCalibrationRow {
            nranks,
            exchange_rounds: rounds,
            assumed_msgs: assumed,
            measured_msgs: measured,
            assumed_threshold: mnd_device::calibrated_recursion_threshold(&platform, nranks),
            measured_threshold: mnd_device::recursion_threshold_for_round_msgs(&platform, measured),
        });
    }
    rows
}

// --------------------------------------------------------------------- //
// Euclidean MST: the geometric workload family (ROADMAP item 5)
// --------------------------------------------------------------------- //

/// One (preset × engine) row of the emst sweep.
#[derive(Clone, Debug)]
pub struct EmstSweepRow {
    /// Geometric preset name (`geo-uniform-2d`, …).
    pub preset: &'static str,
    /// Engine label ([`Engine::name`]).
    pub engine: &'static str,
    /// Points in the cloud (= vertices).
    pub vertices: u64,
    /// Undirected k-NN edges.
    pub edges: u64,
    /// Average degree — concentrates near `2k` on geometric inputs.
    pub avg_degree: f64,
    /// Maximum degree — bounded (no hubs), the defining contrast with
    /// the crawls.
    pub max_degree: u64,
    /// The k that connected the preset (base k, doubled if needed).
    pub k: usize,
    /// Execution time (simulated seconds, paper scale).
    pub exe: f64,
    /// Communication time (simulated seconds, paper scale).
    pub comm: f64,
}

/// One device-calibration row of the emst sweep: where the occupancy
/// model, the §4.3.1 split, and the calibrated recursion threshold land
/// on a bounded-degree geometric input (crawl reference rows included
/// for contrast).
#[derive(Clone, Debug)]
pub struct EmstDeviceRow {
    /// Graph label: a geo preset or a crawl reference.
    pub graph: String,
    /// Degree-skew fraction from the binned schedule (crawls: large;
    /// k-NN graphs: ~0 — every vertex lands in the low bins).
    pub skew: f64,
    /// GPU occupancy under hierarchical binning at this skew.
    pub occ_binned: f64,
    /// GPU occupancy with binning ablated.
    pub occ_unbinned: f64,
    /// §4.3.1 sampled GPU:CPU speed ratio.
    pub gpu_speedup: f64,
    /// §4.3.1 CPU partition share.
    pub cpu_fraction: f64,
    /// Paper-scale edge count (`edges × scale`).
    pub paper_edges: u64,
    /// Calibrated recursion threshold for the platform at this rank
    /// count (paper-scale edges).
    pub recursion_threshold: u64,
    /// Whether the D&C driver would recurse on the paper-scale instance.
    pub recurses: bool,
}

/// The emst sweep: per-engine rows, device-calibration rows, and the
/// small-n oracle record.
#[derive(Clone, Debug)]
pub struct EmstSweep {
    /// Engine rows (preset-major, registry order within a preset).
    pub rows: Vec<EmstSweepRow>,
    /// Device rows: every geo preset plus two crawl references.
    pub devices: Vec<EmstDeviceRow>,
    /// Points in each small-n oracle instance.
    pub oracle_points: u32,
    /// Max EMST inclusion threshold k* observed across presets: the
    /// smallest k for which the mirrored k-NN graph is guaranteed to
    /// contain every EMST edge.
    pub oracle_kstar: usize,
}

/// The EMST inclusion threshold k* of a cloud: for each brute-force EMST
/// edge `(u, v)`, the edge appears in the mirrored k-NN graph iff `v` is
/// within `u`'s first k neighbours *or* vice versa; k* is the max over
/// EMST edges of that minimum rank. For k ≥ k* the k-NN graph contains
/// the whole EMST, so (weights being exact squared distances) its MSF
/// *is* the EMST.
fn emst_inclusion_threshold(cloud: &mnd_graph::gen::PointCloud, emst: &[WEdge]) -> usize {
    let n = cloud.len() as VertexId;
    let rank = |from: VertexId, to: VertexId| -> usize {
        let d = (cloud.sq_dist(from, to), to);
        (0..n)
            .filter(|&j| j != from)
            .filter(|&j| (cloud.sq_dist(from, j), j) < d)
            .count()
            + 1
    };
    emst.iter()
        .map(|e| rank(e.u, e.v).min(rank(e.v, e.u)))
        .max()
        .unwrap_or(0)
}

/// The small-n EMST-correctness oracle for one preset: brute-force the
/// true EMST from the complete squared-distance graph, derive k*, and
/// assert (a) the k-NN MST matches the EMST exactly once k clears k*,
/// and (b) every registry engine run on the k-NN graph returns it too.
/// Returns `(k*, connected k used)`.
fn emst_oracle_check(ctx: &ExpContext, preset: GeoPreset, n: u32) -> usize {
    let cloud = preset.points(n, ctx.seed);
    let brute = kruskal_msf(&cloud.complete_graph());
    assert_eq!(
        brute.num_components,
        1,
        "{}: complete graph must be connected",
        preset.name()
    );
    let kstar = emst_inclusion_threshold(&cloud, &brute.edges);
    let k = kstar.max(preset.base_k());
    let knn = cloud.knn_graph(k);
    assert_eq!(
        kruskal_msf(&knn),
        brute,
        "{}: k-NN MST (k = {k} ≥ k* = {kstar}) != brute-force EMST",
        preset.name()
    );
    for engine in engines_for(ctx, 4) {
        let r = engine.run(&knn);
        assert_eq!(
            r.msf,
            brute,
            "{}: engine {} != brute-force EMST",
            preset.name(),
            engine.name()
        );
    }
    kstar
}

/// The emst sweep (ROADMAP item 5): every registry engine over every
/// geometric preset at the context's scale, oracle-verified two ways —
/// brute-force EMST equality on small instances (when `ctx.verify`),
/// Kruskal + cross-engine forest equality on the large ones — plus the
/// device-calibration table answering the motivating question: where do
/// the occupancy model, the §4.3.1 split, and the calibrated recursion
/// threshold land on bounded-degree inputs vs the crawls?
pub fn emst_sweep(ctx: &ExpContext, nranks: usize) -> EmstSweep {
    // Small-n oracle arm: cheap (complete graphs on ORACLE_N points), so
    // it runs whenever verification is on.
    const ORACLE_N: u32 = 160;
    let mut oracle_kstar = 0;
    if ctx.verify {
        for p in GeoPreset::ALL {
            oracle_kstar = oracle_kstar.max(emst_oracle_check(ctx, p, ORACLE_N));
        }
    }

    let platform = NodePlatform::amd_cluster();
    let threshold = mnd_device::calibrated_recursion_threshold(&platform, nranks);
    let cpu = mnd_device::DeviceModel::cpu_xeon_ivybridge();
    let (gpu, gpu_unbinned) = (
        mnd_device::DeviceModel::gpu_k40(),
        mnd_device::DeviceModel::gpu_k40_unbinned(),
    );
    let mut rows = Vec::new();
    let mut devices = Vec::new();
    let mut device_row = |name: String, el: &EdgeList| {
        let g = CsrGraph::from_edge_list(el);
        let skew = mnd_kernels::binning::bin_graph(&g).skew_fraction();
        let split = calibrate_split(&g, &cpu, &gpu, 3, 0.25, ctx.seed);
        let paper_edges = el.len() as u64 * ctx.scale;
        devices.push(EmstDeviceRow {
            graph: name,
            skew,
            occ_binned: gpu.occupancy(skew),
            occ_unbinned: gpu_unbinned.occupancy(skew),
            gpu_speedup: split.gpu_speedup,
            cpu_fraction: split.cpu_fraction,
            paper_edges,
            recursion_threshold: threshold,
            recurses: paper_edges > threshold,
        });
    };

    for p in GeoPreset::ALL {
        let (el, k) = p.generate_with_k(ctx.scale, ctx.seed);
        let g = CsrGraph::from_edge_list(&el);
        let s = graph_stats(&g, 1, ctx.seed);
        let oracle = if ctx.verify {
            Some(kruskal_msf(&el))
        } else {
            None
        };
        let mut forests: Vec<(&'static str, mnd_kernels::msf::MsfResult)> = Vec::new();
        for engine in engines_for(ctx, nranks) {
            let r = engine.run(&el);
            if let Some(o) = &oracle {
                assert_eq!(
                    &r.msf,
                    o,
                    "{}: engine {} != oracle",
                    p.name(),
                    engine.name()
                );
            }
            if let Some((first, msf)) = forests.first() {
                assert_eq!(
                    &r.msf,
                    msf,
                    "{}: engines {first} and {} disagree",
                    p.name(),
                    engine.name()
                );
            }
            rows.push(EmstSweepRow {
                preset: p.name(),
                engine: engine.name(),
                vertices: s.num_vertices,
                edges: s.num_edges,
                avg_degree: s.avg_degree,
                max_degree: s.max_degree,
                k,
                exe: r.total_time,
                comm: r.comm_time,
            });
            forests.push((engine.name(), r.msf));
        }
        device_row(p.name().to_string(), &el);
    }
    // Crawl reference rows: the regime the thresholds were calibrated on.
    for p in [Preset::Arabic2005, Preset::Gsh2015Tpd] {
        let el = ctx.graph(p);
        device_row(p.name().to_string(), &el);
    }
    EmstSweep {
        rows,
        devices,
        oracle_points: ORACLE_N,
        oracle_kstar,
    }
}

/// Summary of the geometric incremental-serve session.
#[derive(Clone, Debug)]
pub struct EmstServeRow {
    /// Geometric preset the session ran over.
    pub preset: &'static str,
    /// Points in the final cloud.
    pub points: u32,
    /// Update batches streamed into the session.
    pub batches: usize,
    /// Total edges inserted across batches.
    pub inserts: usize,
    /// Final-forest edge count.
    pub forest_edges: usize,
    /// Total update execution seconds charged to the session.
    pub update_exec: f64,
}

/// Streams point insertions through `mnd-serve`'s incremental sessions
/// on a geometric preset: the session opens on the k-NN graph over the
/// first `5/8` of a cloud, then each batch appends points by inserting
/// edges to their k nearest *already-present* neighbours. A new point's
/// first edge attaches a fresh component; each further edge closes a
/// cycle, so the batch exercises cycle-max replacement on a low-degree
/// graph (the crawls exercise it on hubs). When `ctx.verify`, the final
/// session forest must byte-match a Kruskal recompute of the mirrored
/// edge map.
pub fn emst_serve_session(ctx: &ExpContext, nranks: usize) -> EmstServeRow {
    let preset = GeoPreset::Uniform2d;
    let n: u32 = 512;
    let n0: u32 = n * 5 / 8;
    let k = preset.base_k();
    let cloud = preset.points(n, ctx.seed);

    // Initial graph: k-NN restricted to the first n0 points, carried on
    // the full n-vertex id space (later points start isolated).
    let knn = |j: VertexId, present: VertexId| -> Vec<WEdge> {
        let mut cands: Vec<(u64, VertexId)> = (0..present)
            .filter(|&i| i != j)
            .map(|i| (cloud.sq_dist(j, i), i))
            .collect();
        cands.sort_unstable();
        cands
            .iter()
            .take(k)
            .map(|&(d, i)| WEdge::new(j.min(i), j.max(i), d as Weight))
            .collect()
    };
    let mut initial = EdgeList::new(n);
    for j in 0..n0 {
        for e in knn(j, n0) {
            initial.push(e.u, e.v, e.w);
        }
    }
    initial.canonicalize();
    let mut mirror: BTreeMap<(VertexId, VertexId), Weight> =
        initial.edges().iter().map(|e| ((e.u, e.v), e.w)).collect();
    let session = Arc::new(initial);

    // One update batch per 16 appended points; each point's edges go to
    // its k nearest among the points already present.
    let mut jobs = Vec::new();
    let mut total_inserts = 0usize;
    let batch_pts = 16u32;
    let mut batch = 0usize;
    let mut next_pt = n0;
    while next_pt < n {
        let mut inserts = Vec::new();
        for j in next_pt..(next_pt + batch_pts).min(n) {
            for e in knn(j, j) {
                mirror.insert((e.u, e.v), e.w);
                inserts.push(e);
            }
        }
        total_inserts += inserts.len();
        jobs.push(JobSpec {
            tenant: 0,
            kind: JobKind::Update {
                inserts,
                deletes: Vec::new(),
            },
            graph: session.clone(),
            submit: batch as f64,
        });
        next_pt += batch_pts;
        batch += 1;
    }

    let ctx2 = ctx.clone();
    let backend = EngineBackend::new(
        "mnd-mst",
        NodePlatform::amd_cluster(),
        ctx.scale as f64,
        move |ranks| {
            let mut params = EngineParams::new(ranks);
            params.hypar = ctx2.hypar();
            params.bsp = ctx2.bsp();
            params.spmsf.sim_scale = ctx2.scale as f64;
            registry(&params)
                .into_iter()
                .find(|e| e.name() == "mnd-mst")
                .expect("engine registered")
        },
    );
    let cfg = ServeConfig::new(nranks).with_update_mode(UpdateMode::Incremental);
    let mut plane = ServePlane::new(
        cfg,
        Box::new(backend),
        vec![TenantSpec::new("geo", 1.0, jobs.len().max(1))],
    );
    let report = plane.run(jobs.clone());

    let last = report
        .completions
        .iter()
        .filter(|c| c.kind == "update")
        .max_by_key(|c| c.job)
        .expect("update jobs completed");
    let JobResult::Msf(msf) = &last.result else {
        unreachable!("update jobs return forests")
    };
    if ctx.verify {
        assert_eq!(report.completed(), jobs.len(), "geo session: jobs lost");
        let final_graph = EdgeList::from_raw(
            n,
            mirror
                .iter()
                .map(|(&(u, v), &w)| WEdge::new(u, v, w))
                .collect(),
        );
        let oracle = kruskal_msf(&final_graph);
        assert_eq!(
            &**msf, &oracle,
            "geo session: final forest != full-recompute oracle"
        );
        // All n points present and the cloud connected ⇒ a spanning tree.
        assert_eq!(oracle.num_components, 1, "geo session must end connected");
    }
    EmstServeRow {
        preset: preset.name(),
        points: n,
        batches: batch,
        inserts: total_inserts,
        forest_edges: msf.edges.len(),
        update_exec: report
            .completions
            .iter()
            .filter(|c| c.kind == "update")
            .map(|c| c.exec_seconds)
            .sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Experiments at a heavy scale divisor finish quickly and stay
    /// oracle-correct (full-scale runs are exercised by the repro binary).
    fn tiny() -> ExpContext {
        ExpContext {
            scale: 65536,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn table2_has_six_rows() {
        let rows = table2(&tiny());
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.graph == "uk-2007"));
    }

    #[test]
    fn table3_rows_have_positive_times() {
        let rows = table3(&tiny(), 4);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.pregel_exe > 0.0 && r.mnd_exe > 0.0, "{r:?}");
            assert!(r.pregel_comm > 0.0 && r.mnd_comm > 0.0, "{r:?}");
        }
    }

    #[test]
    fn fig8_gpu_rows_cover_node_counts() {
        let ctx = tiny();
        let rows = fig8(&ctx);
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.cpu_only > 0.0 && r.cpu_gpu > 0.0);
        }
    }

    #[test]
    fn ablations_run() {
        let ctx = tiny();
        assert_eq!(ablation_group(&ctx, 8).len(), 4);
        assert_eq!(ablation_excp(&ctx, 4).len(), 3);
        assert!(ablation_thresh(&ctx, 4).len() >= 5);
    }

    #[test]
    fn chaos_sweep_verifies_and_counts_faults() {
        let rows = chaos(&tiny(), 4);
        // Baseline + armed-but-clean + 7 fault plans.
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].overhead, 0.0);
        // The 10% drop plan must force retries somewhere.
        let drops = rows.iter().find(|r| r.plan == "drop 10%").unwrap();
        assert!(drops.retries > 0, "{drops:?}");
        // The crash plan must restore from checkpoint.
        let crash = rows.iter().find(|r| r.plan.starts_with("crash")).unwrap();
        assert_eq!(crash.restores, 1, "{crash:?}");
        // The mid-phase crash must roll back and re-execute: nonzero
        // replayed compute, replayed bytes served from logs for free.
        let mid = rows
            .iter()
            .find(|r| r.plan.starts_with("mid-phase"))
            .unwrap();
        assert_eq!(mid.restores, 1, "{mid:?}");
        assert!(mid.replayed_compute > 0.0, "{mid:?}");
        assert!(mid.replayed_in_bytes > 0, "{mid:?}");
        // Boundary crashes re-read a checkpoint; only mid-phase crashes
        // re-execute work.
        assert_eq!(crash.replayed_compute, 0.0, "{crash:?}");
    }

    #[test]
    fn traffic_covers_driver_tags_under_faults() {
        let rows = traffic(&tiny(), 4);
        assert!(!rows.is_empty());
        let tags: Vec<&str> = rows.iter().map(|r| r.tag.as_str()).collect();
        assert!(tags.contains(&"segments (user 1)"), "{tags:?}");
        assert!(tags.contains(&"leader merge (user 2)"), "{tags:?}");
        // 2% drops over the whole run should force at least one retry.
        assert!(rows.iter().map(|r| r.retries).sum::<u64>() > 0);
    }

    #[test]
    fn checkpoint_sweep_reports_delta_checkpoint_savings() {
        let rows = checkpoint_sweep(&tiny(), 4);
        // 3 registry engines + the spmsf full-checkpoint arm, 4 cadences.
        assert_eq!(rows.len(), 16);
        // verify=true already asserted slim-vs-full per interval inside
        // the sweep; spot-check the densest cadence here.
        let slim = rows
            .iter()
            .find(|r| r.engine == "spmsf" && r.interval == 1)
            .unwrap();
        let full = rows
            .iter()
            .find(|r| r.engine == "spmsf-full" && r.interval == 1)
            .unwrap();
        assert_eq!(slim.writes, full.writes);
        assert!(slim.ckpt_bytes < full.ckpt_bytes, "{slim:?} vs {full:?}");
        assert!(slim.clean_exe < full.clean_exe);
        for r in &rows {
            assert!(r.writes == 0 || r.ckpt_bytes > 0, "{r:?}");
        }
    }

    #[test]
    fn engine_list_names_and_describes_every_engine() {
        let rows = engine_list(&tiny(), 4);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, ["mnd-mst", "bsp", "spmsf"]);
        for r in &rows {
            assert!(!r.description.is_empty(), "{r:?}");
        }
    }

    #[test]
    fn serve_sweep_is_deterministic_and_favors_incremental() {
        let ctx = tiny();
        let a = serve_sweep(&ctx, 4);
        // 3 incremental planes + the recompute arm, 3 tenants each.
        assert_eq!(a.planes.len(), 4);
        assert_eq!(a.tenants.len(), 12);
        let inc = a
            .planes
            .iter()
            .find(|p| p.plane == "mnd-mst/incremental")
            .unwrap();
        let rec = a
            .planes
            .iter()
            .find(|p| p.plane == "mnd-mst/recompute")
            .unwrap();
        // Update-heavy streams: maintaining the forest beats recomputing
        // it by a wide margin, not a hair.
        assert!(
            inc.update_exec < rec.update_exec / 2.0,
            "incremental {} vs recompute {}",
            inc.update_exec,
            rec.update_exec
        );
        assert!(inc.cache_hits > 0 && inc.saved > 0.0, "{inc:?}");
        assert_eq!(inc.rejected, 3, "{inc:?}");
        // The interactive tenant's repeats land in the cache.
        let t = a
            .tenants
            .iter()
            .find(|t| t.plane == "mnd-mst/incremental" && t.tenant == "interactive")
            .unwrap();
        assert_eq!((t.submitted, t.completed), (12, 12), "{t:?}");
        assert!(t.cache_hits >= 8, "{t:?}");
        assert!(t.p50 > 0.0 && t.p95 >= t.p50 && t.p99 >= t.p95, "{t:?}");
        // Determinism: a second sweep reproduces every number.
        let b = serve_sweep(&ctx, 4);
        assert_eq!(format!("{:?}", a.tenants), format!("{:?}", b.tenants));
        assert_eq!(format!("{:?}", a.planes), format!("{:?}", b.planes));
    }

    #[test]
    fn kernel_sweep_reports_all_kernels() {
        use mnd_kernels::policy::KernelPolicy;
        let policy = KernelPolicy {
            par_threshold: 1 << 11, // selects the 4096-row tier ...
            reduce_par_threshold: 1 << 11,
            count_par_threshold: usize::MAX, // ... but never counts (the clamp)
            ..KernelPolicy::default()
        };
        let rows = kernel_sweep(7, &[1 << 12], &policy);
        // Two variants for min_edge_scan and incident_counts, one for the
        // reduction: five rows per size.
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.seq_ns > 0 && r.par_ns > 0, "{r:?}");
            assert!(r.chunk > 0, "{r:?}");
            assert!(r.speedup() > 0.0, "{r:?}");
            assert!(matches!(r.variant, "chunk-merge" | "lockfree"), "{r:?}");
        }
        assert_eq!(
            rows.iter().filter(|r| r.kernel == "min_edge_scan").count(),
            2
        );
        // The policy selects exactly the default-variant election row and
        // the reduction row; the clamped count class selects nothing.
        let on: Vec<_> = rows.iter().filter(|r| r.selected).collect();
        assert_eq!(on.len(), 2, "{on:?}");
        assert!(on
            .iter()
            .any(|r| r.kernel == "min_edge_scan"
                && r.variant == variant_label(policy.election_variant)));
        assert!(on.iter().any(|r| r.kernel == "reduce_holding"));
        assert!(rows
            .iter()
            .filter(|r| r.kernel == "incident_counts")
            .all(|r| !r.selected));
    }

    fn variant_label(v: mnd_kernels::policy::ParVariant) -> &'static str {
        match v {
            mnd_kernels::policy::ParVariant::ChunkMerge => "chunk-merge",
            mnd_kernels::policy::ParVariant::LockFree => "lockfree",
        }
    }

    #[test]
    fn calibration_reports_all_graphs() {
        let rows = calibration(&tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.cpu_fraction), "{r:?}");
        }
    }

    #[test]
    fn comm_sweep_sheds_messages_and_bytes_on_skewed_presets() {
        // Every run inside is oracle-verified (tiny() keeps verify on),
        // including the chaos arm over the full sparse+pack+filter stack.
        let rows = comm_sweep(&tiny(), 8);
        // 2 presets x (4 variants + chaos arm).
        assert_eq!(rows.len(), 10);
        let mut filter_won_somewhere = false;
        for preset in ["gsh-2015-tpd", "sk-2005"] {
            let get = |v: &str| {
                rows.iter()
                    .find(|r| r.preset == preset && r.variant == v)
                    .unwrap()
            };
            let dense = get("dense");
            let sparse = get("sparse");
            let packed = get("sparse+pack");
            let filtered = get("sparse+pack+filter(0.25)");
            // The bugfix: empty buckets stop becoming messages.
            assert!(
                sparse.messages < dense.messages,
                "{preset}: sparse {} !< dense {}",
                sparse.messages,
                dense.messages
            );
            assert!(sparse.payload_msgs < dense.payload_msgs, "{preset}");
            assert_eq!(dense.header_msgs, 0, "{preset}: dense pays no header");
            assert!(sparse.header_msgs > 0, "{preset}");
            // Compression sheds wire bytes at identical message routing.
            assert!(
                packed.wire_mb < sparse.wire_mb,
                "{preset}: packed {} !< sparse {}",
                packed.wire_mb,
                sparse.wire_mb
            );
            assert_eq!(packed.payload_msgs, sparse.payload_msgs, "{preset}");
            // Filtering carries fewer edges, but fewer edges also shift the
            // ring-exchange monitor's decisions, so the total can wobble on
            // a given preset; it must win on at least one (checked below)
            // and never cost more than a small factor on any.
            filter_won_somewhere |= filtered.wire_mb < packed.wire_mb;
            assert!(
                filtered.wire_mb < packed.wire_mb * 1.10,
                "{preset}: filtered {} !<~ packed {}",
                filtered.wire_mb,
                packed.wire_mb
            );
            // The chaos arm completed (it is oracle-verified inside).
            assert!(get("sparse+pack+filter chaos").exe > 0.0);
        }
        assert!(
            filter_won_somewhere,
            "filter never shed wire bytes: {rows:?}"
        );
    }

    #[test]
    fn emst_sweep_runs_every_engine_over_every_preset() {
        let ctx = tiny(); // 2^24/65536 = 256 points per preset
        let sweep = emst_sweep(&ctx, 4);
        // 4 geo presets × 3 registry engines; the sweep itself asserted
        // the brute-force oracle (small n) and cross-engine equality.
        assert_eq!(sweep.rows.len(), 12);
        assert!(sweep.oracle_kstar >= 1);
        for r in &sweep.rows {
            assert!(r.exe > 0.0 && r.comm > 0.0, "{r:?}");
            assert!(r.k >= 8, "{r:?}");
            // Bounded degree: no hubs on any geometric preset.
            assert!(r.max_degree <= 8 * r.k as u64, "{r:?}");
        }
        // Device table: 4 geo rows + 2 crawl references. Geometric inputs
        // must land in the no-skew regime (full GPU occupancy, binned or
        // not); the crawls must not.
        assert_eq!(sweep.devices.len(), 6);
        let crawl = sweep
            .devices
            .iter()
            .find(|d| d.graph == "gsh-2015-tpd")
            .unwrap();
        for d in &sweep.devices {
            assert!((0.0..=1.0).contains(&d.cpu_fraction), "{d:?}");
            assert!(d.gpu_speedup > 0.0, "{d:?}");
            if d.graph.starts_with("geo-uniform") {
                // The pure bounded-degree regime: every vertex lands in
                // the thread-sized bin, occupancy is full, binned or not.
                assert!(d.skew < 0.05, "{d:?}");
                assert!(d.occ_binned > 0.99 && d.occ_unbinned > 0.95, "{d:?}");
            } else if d.graph.starts_with("geo-cluster") {
                // Clustered clouds may push some vertices warp-sized at
                // tiny scales (k doubles to bridge blobs), but stay far
                // below the crawls and keep near-full binned occupancy.
                assert!(d.skew < crawl.skew, "{d:?} vs crawl {}", crawl.skew);
                assert!(d.occ_binned > 0.9, "{d:?}");
            }
        }
        assert!(crawl.skew > 0.3, "{crawl:?}");
        assert!(crawl.occ_unbinned < crawl.occ_binned, "{crawl:?}");
    }

    #[test]
    fn emst_serve_session_replaces_cycle_max_edges() {
        let row = emst_serve_session(&tiny(), 4);
        // 512 - 320 = 192 appended points in batches of 16.
        assert_eq!(row.batches, 12);
        // Each appended point inserts k = 8 edges; only one can attach
        // the new component, so the rest exercised cycle-max replacement.
        assert_eq!(row.inserts, 192 * 8);
        // Connected at the end (asserted against the oracle inside).
        assert_eq!(row.forest_edges, 511);
        assert!(row.update_exec > 0.0);
    }

    #[test]
    fn emst_oracle_rejects_corrupted_forest() {
        // The oracle machinery must actually discriminate: corrupt the
        // correct EMST two ways and watch both checks fire.
        let cloud = GeoPreset::Uniform2d.points(96, 7);
        let el = cloud.complete_graph();
        let good = kruskal_msf(&el);
        assert!(mnd_kernels::msf::verify_msf(&el, &good).is_ok());
        // (a) Swap a forest edge for a non-graph edge: foreign.
        let mut forged = good.clone();
        forged.edges[0].w = forged.edges[0].w.wrapping_add(1);
        assert!(mnd_kernels::msf::verify_msf(&el, &forged).is_err());
        // (b) Keep membership but break minimality: replace the lightest
        // forest edge with the heaviest graph edge (weight changes, and
        // equality against the oracle must fail too).
        let mut heavier = good.clone();
        let heavy = *el.edges().iter().max_by_key(|e| (e.w, e.u, e.v)).unwrap();
        assert!(!heavier.edges.contains(&heavy), "degenerate fixture");
        heavier.edges[0] = heavy;
        assert!(mnd_kernels::msf::verify_msf(&el, &heavier).is_err());
        assert_ne!(heavier, good);
    }

    #[test]
    fn comm_calibration_validates_the_threshold_assumption() {
        let rows = comm_calibration(&tiny());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.exchange_rounds > 0, "{r:?}");
            assert!(r.measured_msgs > 0.0, "{r:?}");
            // The dense assumption upper-bounds the measured sparse
            // exchange, so the calibrated threshold errs toward recursing
            // less — never toward paying more rounds than budgeted.
            assert!(
                r.measured_msgs <= r.assumed_msgs,
                "measured {} > assumed {}",
                r.measured_msgs,
                r.assumed_msgs
            );
            assert!(r.measured_threshold <= r.assumed_threshold, "{r:?}");
        }
    }
}
