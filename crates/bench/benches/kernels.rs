//! Criterion microbenchmarks of the single-device kernels.
//!
//! These measure the *real* wall-clock performance of our implementation
//! (the paper-shape reproduction lives in the `repro` binary, which uses
//! the simulated cost model — see DESIGN.md). Groups are named after the
//! paper sections they correspond to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mnd_graph::presets::Preset;
use mnd_graph::{gen, CsrGraph};
use mnd_kernels::boruvka::boruvka_msf;
use mnd_kernels::cgraph::CGraph;
use mnd_kernels::oracle::kruskal_msf;
use mnd_kernels::parallel::par_boruvka_msf;
use mnd_kernels::policy::{ExcpCond, FreezePolicy, KernelPolicy, StopPolicy};
use mnd_kernels::{local_boruvka, DisjointSets};

/// MST algorithms head to head on an arabic-2005 stand-in (§3.2/§3.5
/// kernels).
fn bench_mst_kernels(c: &mut Criterion) {
    let el = Preset::Arabic2005.generate(16384, 42);
    let edges = el.len() as u64;
    let mut g = c.benchmark_group("mst_kernels");
    g.throughput(Throughput::Elements(edges));
    g.sample_size(20);
    g.bench_function("kruskal", |b| b.iter(|| kruskal_msf(&el)));
    g.bench_function("filter_kruskal", |b| {
        b.iter(|| mnd_kernels::filter_kruskal_msf(&el))
    });
    g.bench_function("boruvka_seq", |b| b.iter(|| boruvka_msf(&el)));
    g.bench_function("boruvka_contraction", |b| {
        b.iter(|| mnd_kernels::contraction_boruvka_msf(&el))
    });
    g.bench_function("boruvka_par_worklist", |b| b.iter(|| par_boruvka_msf(&el)));
    g.finish();
}

/// The partition kernel with exception conditions (§3.2): how much work
/// the border-edge vs border-vertex rules leave on the table.
fn bench_exception_conditions(c: &mut Criterion) {
    let el = Preset::It2004.generate(32768, 7);
    let g = CsrGraph::from_edge_list(&el);
    let range = mnd_graph::partition::partition_1d(&g, 4, 0.0)[1];
    let mut grp = c.benchmark_group("ind_comp_exception");
    grp.sample_size(20);
    for (name, excp) in [
        ("border_edge", ExcpCond::BorderEdge),
        ("border_vertex", ExcpCond::BorderVertex),
    ] {
        grp.bench_with_input(BenchmarkId::from_parameter(name), &excp, |b, &excp| {
            b.iter_batched(
                || CGraph::from_partition(&g, range),
                |mut cg| local_boruvka(&mut cg, excp, FreezePolicy::Sticky, StopPolicy::Exhaustive),
                criterion::BatchSize::LargeInput,
            )
        });
    }
    grp.finish();
}

/// mergeParts reductions (§3.3): self-edge + multi-edge removal sweeps.
fn bench_reductions(c: &mut Criterion) {
    let el = Preset::Gsh2015Tpd.generate(32768, 9);
    let g = CsrGraph::from_edge_list(&el);
    let range = mnd_graph::partition::partition_1d(&g, 4, 0.0)[0];
    // Pre-contract so reductions have self/multi edges to chew on.
    let contracted = {
        let mut cg = CGraph::from_partition(&g, range);
        local_boruvka(
            &mut cg,
            ExcpCond::BorderEdge,
            FreezePolicy::Sticky,
            StopPolicy::Exhaustive,
        );
        cg
    };
    let mut grp = c.benchmark_group("merge_reductions");
    grp.sample_size(30);
    grp.bench_function("self_plus_multi_edge_removal", |b| {
        b.iter_batched(
            || contracted.clone(),
            |mut cg| mnd_kernels::reduce::reduce_holding(&mut cg),
            criterion::BatchSize::LargeInput,
        )
    });
    grp.finish();
}

/// The parallel holding plane: seq vs chunk-merge vs lock-free election
/// scans and reductions across holding sizes up to a million-plus edges.
/// Above the calibrated crossover on a multicore host the parallel rows
/// should win; on a single core they show the overhead the crossover
/// exists to avoid — except the lock-free rows, which have no merge phase
/// and can win on one core through the dense slot lookup alone.
fn bench_holding_plane(c: &mut Criterion) {
    for rows in [1usize << 16, 1 << 20] {
        let el = gen::gnm((rows / 8) as u32, rows as u64, 77);
        let cg = CGraph::from_edge_list(&el);

        let mut grp = c.benchmark_group("holding_plane_scan");
        grp.throughput(Throughput::Elements(rows as u64));
        grp.sample_size(10);
        grp.bench_with_input(BenchmarkId::new("seq", rows), &cg, |b, cg| {
            b.iter(|| mnd_kernels::min_edge_scan_with(cg, &KernelPolicy::seq()))
        });
        for chunk in [4096usize, 16384] {
            grp.bench_with_input(
                BenchmarkId::new(&format!("par{chunk}"), rows),
                &cg,
                |b, cg| {
                    b.iter(|| mnd_kernels::min_edge_scan_with(cg, &KernelPolicy::force_par(chunk)))
                },
            );
            grp.bench_with_input(
                BenchmarkId::new(&format!("lockfree{chunk}"), rows),
                &cg,
                |b, cg| {
                    b.iter(|| {
                        mnd_kernels::min_edge_scan_with(cg, &KernelPolicy::force_lockfree(chunk))
                    })
                },
            );
        }
        grp.finish();

        let mut grp = c.benchmark_group("holding_plane_counts");
        grp.throughput(Throughput::Elements(rows as u64));
        grp.sample_size(10);
        for (name, policy) in [
            ("seq", KernelPolicy::seq()),
            ("par4096", KernelPolicy::force_par(4096)),
            ("lockfree4096", KernelPolicy::force_lockfree(4096)),
        ] {
            grp.bench_with_input(BenchmarkId::new(name, rows), &cg, |b, cg| {
                b.iter_batched(
                    || cg.clone(),
                    |mut cg| cg.incident_counts_with(&policy).to_vec(),
                    criterion::BatchSize::LargeInput,
                )
            });
        }
        grp.finish();

        let mut grp = c.benchmark_group("holding_plane_reduce");
        grp.throughput(Throughput::Elements(rows as u64));
        grp.sample_size(10);
        grp.bench_with_input(BenchmarkId::new("seq", rows), &cg, |b, cg| {
            b.iter_batched(
                || cg.clone(),
                |mut cg| mnd_kernels::reduce::reduce_holding_with(&mut cg, &KernelPolicy::seq()),
                criterion::BatchSize::LargeInput,
            )
        });
        for chunk in [4096usize, 16384] {
            grp.bench_with_input(
                BenchmarkId::new(&format!("par{chunk}"), rows),
                &cg,
                |b, cg| {
                    b.iter_batched(
                        || cg.clone(),
                        |mut cg| {
                            mnd_kernels::reduce::reduce_holding_with(
                                &mut cg,
                                &KernelPolicy::force_par(chunk),
                            )
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
        grp.finish();
    }
}

/// Union-find micro-costs (the inner loop of every kernel).
fn bench_union_find(c: &mut Criterion) {
    let n = 100_000u32;
    let mut grp = c.benchmark_group("union_find");
    grp.throughput(Throughput::Elements(n as u64));
    grp.bench_function("sequential_union_chain", |b| {
        b.iter(|| {
            let mut d = DisjointSets::new(n as usize);
            for i in 0..n - 1 {
                d.union(i, i + 1);
            }
            d.num_sets()
        })
    });
    grp.bench_function("find_after_compression", |b| {
        let mut d = DisjointSets::new(n as usize);
        for i in 0..n - 1 {
            d.union(i, i + 1);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in (0..n).step_by(97) {
                acc += d.find(i) as u64;
            }
            acc
        })
    });
    grp.finish();
}

/// Graph generation + partitioning substrate (§3.1).
fn bench_partitioning(c: &mut Criterion) {
    let el = Preset::Uk2007.generate(16384, 3);
    let g = CsrGraph::from_edge_list(&el);
    let mut grp = c.benchmark_group("partitioning");
    grp.sample_size(30);
    grp.bench_function("csr_build", |b| b.iter(|| CsrGraph::from_edge_list(&el)));
    grp.bench_function("partition_1d_x16", |b| {
        b.iter(|| mnd_graph::partition_1d(&g, 16, 0.0))
    });
    grp.bench_function("degree_binning", |b| {
        b.iter(|| mnd_kernels::binning::bin_graph(&g))
    });
    grp.finish();
}

/// Generator throughput (workload production for all experiments).
fn bench_generators(c: &mut Criterion) {
    let mut grp = c.benchmark_group("generators");
    grp.sample_size(15);
    grp.bench_function("web_crawl_100k", |b| {
        b.iter(|| gen::web_crawl(20_000, 100_000, gen::CrawlParams::default(), 1))
    });
    grp.bench_function("rmat_100k", |b| {
        b.iter(|| gen::rmat(16_384, 100_000, gen::RmatProbs::GRAPH500, 1))
    });
    grp.bench_function("road_grid_100k", |b| {
        b.iter(|| gen::road_grid(280, 180, 0.02, 0.38, 1))
    });
    grp.finish();
}

criterion_group!(
    benches,
    bench_mst_kernels,
    bench_exception_conditions,
    bench_reductions,
    bench_holding_plane,
    bench_union_find,
    bench_partitioning,
    bench_generators
);
criterion_main!(benches);
