//! Criterion benchmarks of the end-to-end distributed runs — one group per
//! paper table/figure, at a reduced scale so `cargo bench` stays tractable
//! (the full-scale regeneration is `cargo run --release -p mnd-bench --bin
//! repro`).
//!
//! What these measure is the *wall-clock* cost of simulating each
//! experiment; the *simulated* times the paper's tables report come from
//! the run reports and are printed by the repro binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mnd_device::NodePlatform;
use mnd_graph::presets::Preset;
use mnd_hypar::HyParConfig;
use mnd_mst::MndMstRunner;
use mnd_pregel::{pregel_msf, BspConfig};

const BENCH_SCALE: u64 = 32768;

fn cfg() -> HyParConfig {
    HyParConfig::default().with_sim_scale(BENCH_SCALE as f64)
}

/// Table 3: Pregel+ vs MND-MST, one run each per graph (16 ranks).
fn bench_table3(c: &mut Criterion) {
    let mut grp = c.benchmark_group("table3_bsp_vs_dnc");
    grp.sample_size(10);
    for p in [Preset::RoadUsa, Preset::Arabic2005] {
        let el = p.generate(BENCH_SCALE, 42);
        grp.bench_with_input(BenchmarkId::new("pregel", p.name()), &el, |b, el| {
            b.iter(|| {
                pregel_msf(
                    el,
                    16,
                    &NodePlatform::amd_cluster(),
                    &BspConfig::default().with_sim_scale(BENCH_SCALE as f64),
                )
            })
        });
        grp.bench_with_input(BenchmarkId::new("mnd_mst", p.name()), &el, |b, el| {
            b.iter(|| MndMstRunner::new(16).with_config(cfg()).run(el))
        });
    }
    grp.finish();
}

/// Table 4 / Figures 4+6: node-count scaling of the full driver.
fn bench_scaling(c: &mut Criterion) {
    let el = Preset::It2004.generate(BENCH_SCALE, 42);
    let mut grp = c.benchmark_group("table4_fig6_scaling");
    grp.sample_size(10);
    for nodes in [1usize, 4, 8, 16] {
        grp.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| MndMstRunner::new(nodes).with_config(cfg()).run(&el))
        });
    }
    grp.finish();
}

/// Figure 8: CPU-only vs hybrid execution of the full driver.
fn bench_hybrid(c: &mut Criterion) {
    let el = Preset::It2004.generate(BENCH_SCALE, 42);
    let mut grp = c.benchmark_group("fig8_hybrid");
    grp.sample_size(10);
    for (name, gpu) in [("cpu_only", false), ("cpu_gpu", true)] {
        grp.bench_with_input(BenchmarkId::from_parameter(name), &gpu, |b, &gpu| {
            b.iter(|| {
                MndMstRunner::new(8)
                    .with_platform(NodePlatform::cray_xc40(gpu))
                    .with_config(cfg())
                    .run(&el)
            })
        });
    }
    grp.finish();
}

/// §3.4 group-size ablation through the full driver.
fn bench_group_sizes(c: &mut Criterion) {
    let el = Preset::Arabic2005.generate(BENCH_SCALE, 42);
    let mut grp = c.benchmark_group("ablation_group_size");
    grp.sample_size(10);
    for gs in [2usize, 4, 8, 16] {
        grp.bench_with_input(BenchmarkId::from_parameter(gs), &gs, |b, &gs| {
            b.iter(|| {
                let config = HyParConfig {
                    group_size: gs,
                    ..cfg()
                };
                MndMstRunner::new(16).with_config(config).run(&el)
            })
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    bench_table3,
    bench_scaling,
    bench_hybrid,
    bench_group_sizes
);
criterion_main!(benches);
