//! # mnd-spmsf — min-plus sparse-matrix MSF on the shared engine fabric
//!
//! The third registered [`mnd_engine::Engine`]: a linear-algebra
//! formulation of Boruvka in the GraphBLAS style (cf. the LAGraph MSF),
//! run over the same simulated cluster, cost models, fault plans, replay
//! log, and checkpoint recovery as the D&C driver and the BSP baseline.
//!
//! Per Boruvka round:
//!
//! 1. **Min-plus SpMV** — each rank scans its 1D CSR row block and, per
//!    source component, elects the minimum outgoing edge under the strict
//!    `(w, u, v)` total order (the semiring "multiply" is edge lookup, the
//!    "add" is min; the mask is `comp[u] != comp[v]`).
//! 2. **Candidate reduction** — candidates route to the owner of their
//!    source component, which min-reduces to the component's global
//!    elected edge.
//! 3. **Hook** — owners exchange probes to detect mutual pairs (two
//!    components electing the same cut edge — guaranteed equal by the
//!    total order) and break them toward the smaller id, keeping each
//!    forest edge exactly once.
//! 4. **Compress** — distributed pointer jumping over the hook forest
//!    until every pointer names a root.
//! 5. **Relabel + prune** — new roots broadcast; the replicated component
//!    vector relabels and now-internal rows drop out of the row blocks.
//!
//! Every collective step is a recovery step of the shared driver
//! ([`mnd_engine::run_recoverable`]): the worker state checkpoints on the
//! configured cadence, and an injected mid-step crash rolls back and
//! replays exactly like the other two engines (DESIGN.md §6).

pub mod engine;
pub mod msf;

pub use engine::SpmsfEngine;
pub use msf::{spmsf_msf, spmsf_msf_chaos, SpmsfConfig, SpmsfReport, SpmsfStats};
