//! [`Engine`] adapter for the min-plus engine: packages a rank count, a
//! platform, and a [`SpmsfConfig`] into the engine-registry contract.

use mnd_device::NodePlatform;
use mnd_engine::{Engine, EngineChaos, EngineReport};
use mnd_graph::EdgeList;

use crate::msf::{spmsf_msf_chaos, SpmsfConfig};

/// The min-plus sparse-matrix MSF as a registry engine.
#[derive(Clone, Debug)]
pub struct SpmsfEngine {
    /// Number of simulated ranks.
    pub nranks: usize,
    /// Node hardware + interconnect.
    pub platform: NodePlatform,
    /// Scale and chaos-cadence knobs.
    pub cfg: SpmsfConfig,
}

impl SpmsfEngine {
    /// A min-plus engine on the AMD-cluster platform with default tuning.
    pub fn new(nranks: usize) -> Self {
        SpmsfEngine {
            nranks,
            platform: NodePlatform::amd_cluster(),
            cfg: SpmsfConfig::default(),
        }
    }
}

impl Engine for SpmsfEngine {
    fn name(&self) -> &'static str {
        "spmsf"
    }

    fn description(&self) -> &'static str {
        "min-plus SpMV MSF: Boruvka rounds as semiring matrix-vector products with delta checkpoints"
    }

    fn run_chaos(&self, el: &EdgeList, chaos: &EngineChaos) -> EngineReport {
        let r = spmsf_msf_chaos(el, self.nranks, &self.platform, &self.cfg, chaos);
        EngineReport {
            msf: r.msf,
            total_time: r.total_time,
            comm_time: r.comm_time,
            rank_stats: r.rank_stats,
            recovered_units: r.recovered_steps,
        }
    }
}
