//! The min-plus SpMV MSF algorithm (see the crate docs for the round
//! structure).
//!
//! The worker's mutable state lives in [`SpmsfState`] so a chaos-armed run
//! can checkpoint it at collective-step boundaries and roll back after an
//! injected mid-step crash. The partition map and CSR graph are immutable
//! and rebuilt deterministically on re-execution; the per-round hook
//! pointers are transient between boundaries and re-derived by the replay.

use std::cell::Cell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mnd_device::NodePlatform;
use mnd_engine::{run_recoverable, EngineChaos, Recoverable, Recovery};
use mnd_graph::partition::{owner_of, partition_1d};
use mnd_graph::types::{VertexId, WEdge, Weight};
use mnd_graph::{CsrGraph, EdgeList};
use mnd_kernels::msf::MsfResult;
use mnd_net::{Cluster, Comm, RankStats, Wire};

/// Tunables of the min-plus engine.
#[derive(Clone, Debug)]
pub struct SpmsfConfig {
    /// Simulation scale (see `HyParConfig::sim_scale`): device work and
    /// message bytes are multiplied by this so fixed overheads keep their
    /// paper-scale ratios.
    pub sim_scale: f64,
    /// Collective steps between checkpoints when a chaos schedule is
    /// armed. A round costs a handful of steps, so the default of 2
    /// checkpoints a few times per round; see `repro checkpoint-sweep`.
    pub checkpoint_interval: u64,
    /// Delta-encode the replicated component vector in checkpoints:
    /// after the base segment, each write charges only the entries the
    /// relabel rewrote since the previous checkpoint (an `(index, root)`
    /// pair per entry) instead of re-streaming all `O(V)` replicated
    /// entries. On by default; the `false` arm exists so tests and
    /// `repro checkpoint-sweep` can show the saving against the old
    /// full-vector scheme.
    pub delta_checkpoints: bool,
}

impl Default for SpmsfConfig {
    fn default() -> Self {
        SpmsfConfig {
            sim_scale: 1.0,
            checkpoint_interval: 2,
            delta_checkpoints: true,
        }
    }
}

/// Counters of one min-plus run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpmsfStats {
    /// Boruvka rounds executed.
    pub rounds: u64,
    /// Collective steps (candidate exchanges, hook probes, jump
    /// query/reply pairs, root broadcasts).
    pub steps: u64,
    /// Steps re-executed at recovery cost after injected crashes.
    pub recovered_steps: u64,
}

/// Outcome of a min-plus run — mirrors `MndMstReport`/`PregelReport` so
/// benches can print all three side by side.
#[derive(Clone, Debug)]
pub struct SpmsfReport {
    /// The global minimum spanning forest.
    pub msf: MsfResult,
    /// Simulated makespan (max final virtual clock).
    pub total_time: f64,
    /// Max communication time across ranks.
    pub comm_time: f64,
    /// Boruvka rounds.
    pub rounds: u64,
    /// Collective steps (max across ranks — they run in lockstep).
    pub steps: u64,
    /// Steps re-executed at recovery cost, summed over ranks (0 on
    /// fault-free runs).
    pub recovered_steps: u64,
    /// Per-rank raw statistics.
    pub rank_stats: Vec<RankStats>,
}

/// The mutable per-rank state — the checkpoint unit for rollback
/// recovery: the replicated component vector, this rank's surviving CSR
/// row block, settled forest edges, and the step counters (checkpointed
/// together so restored counters stay consistent with restored progress).
#[derive(Clone)]
struct SpmsfState {
    /// Component of every vertex (replicated, relabelled each round).
    comp: Vec<VertexId>,
    /// This rank's directed row block: `(u, v, w)` with `u` owned. Rows
    /// whose endpoints merge are pruned each round.
    rows: Vec<(VertexId, VertexId, Weight)>,
    /// Forest edges settled by this rank (as owner of the electing
    /// component).
    msf_local: Vec<WEdge>,
    /// Round/step counters.
    stats: SpmsfStats,
    /// Delta-encode the component vector in checkpoints (from
    /// [`SpmsfConfig::delta_checkpoints`]).
    delta: bool,
    /// Distinct entries of `comp` the relabel rewrote since the last
    /// checkpoint capture — the delta segment's size. An entry
    /// relabelled in several rounds within one window is a single
    /// `(index, root)` pair in the segment (the latest root wins), so it
    /// is counted on first touch only — see `comp_epoch`. `Cell` because
    /// [`Recoverable::capture`] takes `&self` but must start a new
    /// delta window.
    comp_dirty: Cell<u64>,
    /// Per-entry delta-window stamp: `comp_epoch[u] == dirty_epoch`
    /// means entry `u` is already counted in `comp_dirty` for the
    /// current window.
    comp_epoch: Vec<u64>,
    /// The current delta window id; bumped by capture/restore so stale
    /// stamps are invalidated without an `O(V)` clear.
    dirty_epoch: Cell<u64>,
    /// Whether a base segment exists in this execution. The first
    /// capture streams the full vector; a restore re-establishes the
    /// base (the restored vector *is* the latest segment's content).
    has_base: Cell<bool>,
}

/// The min-plus engine's checkpoint payload. It carries the full state —
/// restore must be exact — but *charges* the component vector at its
/// encoded size: entries are only rewritten by the per-round relabel, so
/// consecutive checkpoints differ in the merged entries alone, and the
/// storage segment records `(index, new_root)` pairs against the resident
/// base instead of re-streaming all `O(V)` replicated entries. Restores
/// re-read the latest segment; the base stays resident in node-local
/// storage across segments (log-structured store, compacted on restore).
#[derive(Clone)]
struct SpmsfCheckpoint {
    comp: Vec<VertexId>,
    rows: Vec<(VertexId, VertexId, Weight)>,
    msf_local: Vec<WEdge>,
    stats: SpmsfStats,
    /// `None`: base segment (full vector). `Some(k)`: delta segment
    /// rewriting `k` entries.
    comp_delta: Option<u64>,
}

impl Wire for SpmsfCheckpoint {
    fn wire_bytes(&self) -> u64 {
        // Delta segments charge an entry-count header plus an
        // (index: u32, root: u32) pair per rewritten entry.
        let comp_bytes = match self.comp_delta {
            Some(k) => 8 + k * 8,
            None => self.comp.wire_bytes(),
        };
        comp_bytes + self.rows.wire_bytes() + self.msf_local.wire_bytes() + 3 * 8
    }
}

impl Recoverable for SpmsfState {
    type State = SpmsfCheckpoint;
    fn capture(&self) -> SpmsfCheckpoint {
        // A delta segment only pays off while the rewrites since the
        // last checkpoint stay under the full vector's footprint —
        // sparse cadences can accumulate more rewrites than entries, at
        // which point the base encoding is the smaller write.
        let dirty = self.comp_dirty.get();
        let comp_delta =
            (self.delta && self.has_base.get() && 8 + dirty * 8 < self.comp.wire_bytes())
                .then_some(dirty);
        self.has_base.set(true);
        self.comp_dirty.set(0);
        self.dirty_epoch.set(self.dirty_epoch.get() + 1);
        SpmsfCheckpoint {
            comp: self.comp.clone(),
            rows: self.rows.clone(),
            msf_local: self.msf_local.clone(),
            stats: self.stats,
            comp_delta,
        }
    }
    fn restore(&mut self, snapshot: SpmsfCheckpoint) {
        self.comp = snapshot.comp;
        self.rows = snapshot.rows;
        self.msf_local = snapshot.msf_local;
        self.stats = snapshot.stats;
        self.comp_dirty.set(0);
        self.dirty_epoch.set(self.dirty_epoch.get() + 1);
        self.has_base.set(true);
    }
}

/// Runs the min-plus MSF on `nranks` ranks over the platform's network and
/// CPU model. Returns the unique MSF (oracle-comparable) plus simulated
/// times.
pub fn spmsf_msf(
    el: &EdgeList,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &SpmsfConfig,
) -> SpmsfReport {
    spmsf_msf_chaos(el, nranks, platform, cfg, &EngineChaos::none())
}

/// [`spmsf_msf`] with the chaos plane armed: fabric faults from
/// `chaos.faults`, step-boundary checkpoints and mid-step crash rollback
/// from `chaos.control`. With [`EngineChaos::none`] this is exactly the
/// fault-free run.
pub fn spmsf_msf_chaos(
    el: &EdgeList,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &SpmsfConfig,
    chaos: &EngineChaos,
) -> SpmsfReport {
    assert!(nranks >= 1);
    let csr = Arc::new(CsrGraph::from_edge_list(el));
    let n = el.num_vertices();
    let network = platform.network.scaled(cfg.sim_scale);
    let cluster = Cluster::new(nranks, network).with_fault_hook(chaos.faults.clone());

    let outcomes = cluster.run(|comm| {
        run_recoverable(
            comm,
            &chaos.control,
            &chaos.observer,
            cfg.checkpoint_interval,
            cfg.sim_scale,
            |rp| worker_main(comm, &csr, n, platform, cfg, rp),
        )
    });

    let total_time = Cluster::makespan(&outcomes);
    let mut msf = None;
    let mut rounds = 0;
    let mut steps = 0;
    let mut recovered_steps = 0;
    let mut rank_stats = Vec::new();
    for o in &outcomes {
        let (m, stats) = &o.result;
        if let Some(m) = m {
            msf = Some(m.clone());
        }
        rounds = rounds.max(stats.rounds);
        steps = steps.max(stats.steps);
        recovered_steps += stats.recovered_steps;
        rank_stats.push(o.stats.clone());
    }
    let comm_time = rank_stats.iter().map(|s| s.comm_time).fold(0.0, f64::max);
    SpmsfReport {
        msf: msf.expect("rank 0 returns the MSF"),
        total_time,
        comm_time,
        rounds,
        steps,
        recovered_steps,
        rank_stats,
    }
}

/// One collective step: counts it (at recovery cost when replaying a
/// crashed epoch live) and runs the exchange.
fn exchange<T: Wire + Clone>(
    comm: &Comm,
    buckets: Vec<Vec<T>>,
    stats: &mut SpmsfStats,
) -> Vec<Vec<T>> {
    stats.steps += 1;
    if comm.replay_live() {
        stats.recovered_steps += 1;
    }
    comm.alltoallv(buckets)
}

fn worker_main(
    comm: &Comm,
    csr: &CsrGraph,
    n: VertexId,
    platform: &NodePlatform,
    cfg: &SpmsfConfig,
    rp: &mut Recovery<'_, SpmsfCheckpoint>,
) -> (Option<MsfResult>, SpmsfStats) {
    let me = comm.rank();
    let p = comm.size();
    let cpu = &platform.cpu;
    let charge = |comm: &Comm, items: u64| {
        comm.compute(items as f64 * cfg.sim_scale / (cpu.edge_throughput * cpu.efficiency));
    };

    let ranges = partition_1d(csr, p, 0.0);
    let mut st = SpmsfState {
        comp: (0..n).collect(),
        rows: ranges[me]
            .iter()
            .flat_map(|u| csr.neighbors(u).map(move |(v, w)| (u, v, w)))
            .collect(),
        msf_local: Vec::new(),
        stats: SpmsfStats::default(),
        delta: cfg.delta_checkpoints,
        comp_dirty: Cell::new(0),
        comp_epoch: vec![0; n as usize],
        dirty_epoch: Cell::new(1),
        has_base: Cell::new(false),
    };
    charge(comm, st.rows.len() as u64);

    loop {
        let progress = st.stats.steps;
        rp.boundary(&mut st, progress);

        // (1) Min-plus SpMV over the row block: per source component, the
        // minimum outgoing edge under the strict (w, u, v) order.
        let mut local_best: HashMap<VertexId, (WEdge, VertexId)> = HashMap::new();
        for &(u, v, w) in &st.rows {
            let (cu, cv) = (st.comp[u as usize], st.comp[v as usize]);
            if cu == cv {
                continue;
            }
            let e = WEdge::new(u, v, w);
            match local_best.entry(cu) {
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    if e < o.get().0 {
                        o.insert((e, cv));
                    }
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((e, cv));
                }
            }
        }
        charge(comm, st.rows.len() as u64);

        // Fixpoint: no component anywhere has an outgoing edge.
        if comm.allreduce_u64(local_best.len() as u64, |a, b| a + b) == 0 {
            break;
        }
        st.stats.rounds += 1;

        // (2) Route candidates to the owner of their source component,
        // which min-reduces to the global elected edge.
        let mut buckets: Vec<Vec<(VertexId, WEdge, VertexId)>> = vec![Vec::new(); p];
        for (c, (e, t)) in local_best {
            buckets[owner_of(&ranges, c)].push((c, e, t));
        }
        let inbound = exchange(comm, buckets, &mut st.stats);
        let mut best: HashMap<VertexId, (WEdge, VertexId)> = HashMap::new();
        let mut incoming = 0u64;
        for msgs in inbound {
            for (c, e, t) in msgs {
                incoming += 1;
                match best.entry(c) {
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        if e < o.get().0 {
                            o.insert((e, t));
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert((e, t));
                    }
                }
            }
        }
        charge(comm, incoming);

        // (3) Hook. Probes `(t, c)` tell owner(t) that component c elected
        // an edge into t; a mutual pair elected the *same* cut edge (both
        // are the minimum of the c–t cut under a total order), so the
        // smaller id becomes the pair's root and keeps the edge once.
        let mut probes: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p];
        for (&c, &(_, t)) in &best {
            probes[owner_of(&ranges, t)].push((t, c));
        }
        let inbound = exchange(comm, probes, &mut st.stats);
        let mut pointers: HashSet<(VertexId, VertexId)> = HashSet::new();
        for msgs in inbound {
            for (t, c) in msgs {
                pointers.insert((t, c));
            }
        }
        let mut parent: HashMap<VertexId, VertexId> = HashMap::new();
        for (&c, &(e, t)) in &best {
            let mutual = pointers.contains(&(c, t));
            if mutual && c > t {
                // The partner keeps the shared edge; c just hooks.
                parent.insert(c, t);
            } else {
                if mutual {
                    // c < t: c is the pair's root.
                    parent.insert(c, c);
                } else {
                    parent.insert(c, t);
                }
                st.msf_local.push(e);
            }
        }
        charge(comm, best.len() as u64);

        // (4) Compress: distributed pointer jumping. The hook forest is
        // acyclic (mutual pairs were broken), so pointer depth halves per
        // iteration and the changed-count allreduce reaches zero.
        loop {
            let progress = st.stats.steps;
            rp.boundary(&mut st, progress);
            let mut queries: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p];
            for (&c, &t) in &parent {
                if t != c {
                    queries[owner_of(&ranges, t)].push((t, c));
                }
            }
            let pending: u64 = queries.iter().map(|q| q.len() as u64).sum();
            let inbound = exchange(comm, queries, &mut st.stats);
            let mut replies: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p];
            for msgs in inbound {
                for (t, c) in msgs {
                    // Components absent from `parent` elected nothing:
                    // they are roots.
                    let gp = parent.get(&t).copied().unwrap_or(t);
                    replies[owner_of(&ranges, c)].push((c, gp));
                }
            }
            let back = exchange(comm, replies, &mut st.stats);
            let mut changed = 0u64;
            for msgs in back {
                for (c, gp) in msgs {
                    let cur = parent.get_mut(&c).expect("reply for unknown component");
                    if *cur != gp {
                        *cur = gp;
                        changed += 1;
                    }
                }
            }
            charge(comm, pending);
            if comm.allreduce_u64(changed, |a, b| a.max(b)) == 0 {
                break;
            }
        }

        // (5) Relabel: merged components broadcast their new root and
        // every rank applies the map to its replicated component vector,
        // then prunes rows the merge made internal.
        st.stats.steps += 1;
        if comm.replay_live() {
            st.stats.recovered_steps += 1;
        }
        let moved: Vec<(VertexId, VertexId)> = parent
            .iter()
            .filter(|&(c, t)| c != t)
            .map(|(&c, &t)| (c, t))
            .collect();
        let mut remap: HashMap<VertexId, VertexId> = HashMap::new();
        for msgs in comm.allgather_vec(moved) {
            for (c, r) in msgs {
                remap.insert(c, r);
            }
        }
        let epoch = st.dirty_epoch.get();
        let mut rewritten = 0u64;
        for (cu, stamp) in st.comp.iter_mut().zip(st.comp_epoch.iter_mut()) {
            if let Some(&r) = remap.get(cu) {
                *cu = r;
                // First touch in this delta window: one (index, root)
                // pair in the next segment, however many more rounds
                // relabel this entry before the capture.
                if *stamp != epoch {
                    *stamp = epoch;
                    rewritten += 1;
                }
            }
        }
        st.comp_dirty.set(st.comp_dirty.get() + rewritten);
        charge(comm, n as u64);

        let before = st.rows.len() as u64;
        let comp = &st.comp;
        st.rows
            .retain(|&(u, v, _)| comp[u as usize] != comp[v as usize]);
        charge(comm, before);
    }

    // Settled edges gather to rank 0, which assembles the canonical
    // forest (sorted, deduplicated by construction).
    let msf = comm.gather_vec(0, st.msf_local.clone()).map(|per_rank| {
        let edges: Vec<WEdge> = per_rank.into_iter().flatten().collect();
        MsfResult::from_edges(n, edges)
    });
    (msf, st.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;
    use mnd_kernels::kruskal_msf;

    fn run(el: &EdgeList, nranks: usize) -> SpmsfReport {
        spmsf_msf(
            el,
            nranks,
            &NodePlatform::amd_cluster(),
            &SpmsfConfig::default(),
        )
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for (n, m, seed) in [(50u32, 120u64, 1u64), (400, 2400, 2), (1000, 8000, 3)] {
            let el = gen::gnm(n, m, seed);
            let r = run(&el, 4);
            assert_eq!(r.msf, kruskal_msf(&el), "n={n} m={m} seed={seed}");
        }
    }

    #[test]
    fn rank_counts_agree() {
        let el = gen::gnm(300, 1800, 17);
        let oracle = kruskal_msf(&el);
        for p in [1, 2, 3, 5, 8] {
            let r = run(&el, p);
            assert_eq!(r.msf, oracle, "p={p}");
        }
    }

    #[test]
    fn disconnected_and_degenerate_inputs() {
        // Two far-apart cliques: forest has 2 components.
        let mut el = EdgeList::new(100);
        for c in [0u32, 50] {
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    el.push(c + i, c + j, (i * 13 + j * 7 + c) % 97 + 1);
                }
            }
        }
        let r = run(&el, 4);
        let oracle = kruskal_msf(&el);
        assert_eq!(r.msf, oracle);
        assert!(r.msf.num_components >= 2);

        // Empty graph.
        let empty = EdgeList::new(0);
        let r = run(&empty, 3);
        assert_eq!(r.msf.edges.len(), 0);

        // Isolated vertices only.
        let iso = EdgeList::new(7);
        let r = run(&iso, 2);
        assert_eq!(r.msf.num_components, 7);

        // Single edge.
        let mut one = EdgeList::new(2);
        one.push(0, 1, 5);
        let r = run(&one, 4);
        assert_eq!(r.msf.weight, 5);
    }

    #[test]
    fn mid_step_crash_recovers_byte_identical() {
        use mnd_chaos::FaultPlan;
        let el = gen::gnm(600, 3600, 31);
        let oracle = kruskal_msf(&el);
        let clean = run(&el, 4);
        let plan = Arc::new(FaultPlan::new(3).with_mid_phase_crash(2, 1, 3));
        let chaos = EngineChaos::from_plan(plan);
        let r = spmsf_msf_chaos(
            &el,
            4,
            &NodePlatform::amd_cluster(),
            &SpmsfConfig::default(),
            &chaos,
        );
        assert_eq!(r.msf, oracle);
        assert_eq!(r.msf, clean.msf, "recovered forest must be byte-identical");
        assert_eq!(r.rank_stats[2].checkpoint_restores, 1);
        assert!(r.recovered_steps > 0, "interrupted epoch re-runs steps");
        assert!(r.total_time > clean.total_time, "recovery costs time");
        // Replayed inbound traffic is served from the log: the logical
        // fabric counters match the fault-free run on every rank.
        for (rank, (a, b)) in clean.rank_stats.iter().zip(&r.rank_stats).enumerate() {
            assert_eq!(a.bytes_sent, b.bytes_sent, "rank {rank} bytes");
            assert_eq!(a.messages_sent, b.messages_sent, "rank {rank} messages");
        }
    }

    #[test]
    fn delta_checkpoints_shrink_the_bill_and_stay_recoverable() {
        use mnd_chaos::FaultPlan;
        let el = gen::gnm(2000, 12000, 41);
        let oracle = kruskal_msf(&el);
        let platform = NodePlatform::amd_cluster();
        // Armed-but-clean plan: checkpoints are written, nothing crashes.
        let clean_plan = || EngineChaos::from_plan(Arc::new(FaultPlan::new(9)));
        let run_with = |delta: bool, chaos: &EngineChaos| {
            let cfg = SpmsfConfig {
                checkpoint_interval: 1,
                delta_checkpoints: delta,
                ..SpmsfConfig::default()
            };
            spmsf_msf_chaos(&el, 4, &platform, &cfg, chaos)
        };
        let full = run_with(false, &clean_plan());
        let slim = run_with(true, &clean_plan());
        assert_eq!(full.msf, oracle);
        assert_eq!(slim.msf, oracle);
        let writes = |r: &SpmsfReport| {
            r.rank_stats
                .iter()
                .map(|s| s.checkpoint_writes)
                .sum::<u64>()
        };
        let bytes = |r: &SpmsfReport| r.rank_stats.iter().map(|s| s.checkpoint_bytes).sum::<u64>();
        assert_eq!(writes(&full), writes(&slim), "same boundaries taken");
        assert!(writes(&slim) > 4, "interval 1 checkpoints every boundary");
        // After the base segment every write saves nearly the whole 4n
        // component vector (only merged entries are re-streamed), so the
        // cumulative bill must drop by more than one full vector per rank.
        let n = el.num_vertices() as u64;
        assert!(
            bytes(&slim) + 4 * n * 4 < bytes(&full),
            "delta {} vs full {}",
            bytes(&slim),
            bytes(&full)
        );
        assert!(
            slim.total_time < full.total_time,
            "smaller writes cost less"
        );

        // The delta scheme must recover byte-identically through a
        // mid-step crash, exactly like the full scheme always did.
        let crash_plan =
            EngineChaos::from_plan(Arc::new(FaultPlan::new(3).with_mid_phase_crash(1, 1, 1)));
        let crashed = run_with(true, &crash_plan);
        assert_eq!(crashed.msf, oracle);
        assert!(crashed.rank_stats[1].checkpoint_restores >= 1);
    }

    #[test]
    fn rounds_are_logarithmic() {
        let el = gen::gnm(2000, 12000, 23);
        let r = run(&el, 4);
        assert!(r.rounds > 0);
        assert!(
            r.rounds <= 12,
            "Boruvka halves components per round, got {}",
            r.rounds
        );
    }
}
