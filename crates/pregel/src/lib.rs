//! # mnd-pregel — the BSP (Pregel+) baseline
//!
//! The paper compares MND-MST against Pregel+ (Yan et al., WWW'15), the
//! best-performing BSP distributed graph system of its time. Pregel+ is a
//! C++/Hadoop codebase that cannot run here, so this crate implements the
//! substitute described in DESIGN.md: a faithful **bulk-synchronous
//! vertex-centric minimum-spanning-forest** over the same simulated
//! cluster (`mnd-net`) and the same device cost models, so the comparison
//! is apples-to-apples — what differs is exactly what the paper credits:
//! the execution model.
//!
//! The algorithm is the standard BSP Boruvka/MSF used by Pregel+ and GPS:
//! per Boruvka round,
//!
//! 1. every vertex elects the lightest edge leaving its supervertex and
//!    messages the candidate to its supervertex root (with **message
//!    combining** — Pregel+'s first optimisation),
//! 2. roots pick the component minimum and exchange merge proposals;
//!    mutual proposals resolve to the smaller root (conjoined-tree
//!    resolution),
//! 3. **pointer-jumping supersteps** compress every vertex's parent to the
//!    new root,
//! 4. vertices whose supervertex changed broadcast the new id to the
//!    workers holding their neighbours (**LALP-style mirroring** — one
//!    message per worker instead of per edge — Pregel+'s second
//!    optimisation), and stale/internal adjacency entries are pruned.
//!
//! Rounds repeat until no component can grow. Every round costs a handful
//! of global supersteps with `O(V + E_cut)` messages — the per-superstep
//! synchronisation and traffic that §5.2 of the paper measures as 75% of
//! Pregel+'s runtime.

//!
//! Chaos-armed entry points ([`pregel_msf_chaos`], [`pregel_bfs_chaos`])
//! run the same algorithms under an injected fault schedule with
//! superstep-boundary checkpoints and mid-superstep crash rollback — the
//! BSP half of the resilience comparison (see [`chaos`] and
//! DESIGN.md §5g).

pub mod bfs;
pub mod chaos;
pub mod engine;
pub mod framework;
pub mod msf;

pub use bfs::{pregel_bfs, pregel_bfs_chaos, BspBfsReport};
pub use chaos::BspChaos;
pub use engine::BspEngine;
pub use framework::{BspConfig, BspStats};
pub use msf::{pregel_msf, pregel_msf_chaos, PregelReport};
