//! BSP execution helpers: superstep message exchange with combining, and
//! run statistics.

use mnd_net::Comm;

/// How the BSP system assigns vertices to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BspPartitioning {
    /// Pregel/Pregel+ default: `worker = vertex mod P`. Destroys input
    /// locality — the root cause of the BSP communication volume the paper
    /// measures.
    #[default]
    Hash,
    /// Contiguous degree-balanced ranges (what MND-MST uses). Available as
    /// an ablation: "how much of the gap is partitioning vs execution
    /// model?".
    Range1D,
}

/// Configuration of the BSP baseline's optimisations (both on by default —
/// the paper compares against tuned Pregel+, not strawman Pregel).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BspConfig {
    /// Vertex-to-worker assignment.
    pub partitioning: BspPartitioning,
    /// Combine messages addressed to the same destination vertex at the
    /// sender (Pregel+ message combining).
    pub combine: bool,
    /// LALP mirroring threshold: a vertex whose (live) degree is at least
    /// this broadcasts its parent update once per worker instead of once
    /// per edge. `None` disables mirroring entirely (plain Pregel).
    /// Pregel+'s LALP applies mirroring to high-degree vertices only —
    /// low-degree vertices message per edge.
    pub mirror_threshold: Option<u64>,
    /// Per logical message CPU cost in seconds (each end): the
    /// serialisation/envelope overhead of the BSP system's messaging stack
    /// (Pregel+ is Java/Hadoop-based). Calibrated so the baseline's
    /// computation:communication split matches the paper's Figure 5
    /// profile (~70% communication at 16 workers); see EXPERIMENTS.md.
    pub per_message_cost: f64,
    /// Simulation scale (see DESIGN.md): multiplies modelled compute work
    /// and message bytes.
    pub sim_scale: f64,
    /// Supersteps between recovery points when a chaos plan is armed
    /// (`crate::chaos`): every `checkpoint_interval` supersteps the worker
    /// writes a state checkpoint it can roll back to after an injected
    /// mid-superstep crash. Ignored (no checkpoints at all) on fault-free
    /// runs, so the baseline's clean numbers are unchanged.
    pub checkpoint_interval: u64,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            partitioning: BspPartitioning::Hash,
            combine: true,
            mirror_threshold: Some(128),
            per_message_cost: 0.06e-6,
            sim_scale: 1.0,
            checkpoint_interval: 4,
        }
    }
}

impl BspConfig {
    /// Config with a simulation scale.
    pub fn with_sim_scale(mut self, s: f64) -> Self {
        assert!(s >= 1.0);
        self.sim_scale = s;
        self
    }
}

/// Counters one worker accumulates over a BSP run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BspStats {
    /// Supersteps executed (global barriers).
    pub supersteps: u64,
    /// Boruvka rounds completed.
    pub rounds: u64,
    /// Messages sent by this worker (before cost-model accounting, after
    /// combining).
    pub messages: u64,
    /// Supersteps re-executed at recovery cost after a mid-superstep
    /// crash: the stretch between the restored checkpoint and the crash
    /// point replays with compute charged (see `crate::chaos`). 0 on
    /// fault-free runs.
    pub recovered_supersteps: u64,
}

/// One superstep's message exchange: per-destination-worker buckets go out,
/// the per-source inbound buckets come back, and the barrier at the end is
/// implicit in the all-to-all (every worker receives from every worker,
/// empty or not — the BSP synchronisation the paper's analysis targets).
pub fn superstep_exchange<T: mnd_net::Wire + Clone>(
    comm: &Comm,
    buckets: Vec<Vec<T>>,
    stats: &mut BspStats,
    cfg: &BspConfig,
) -> Vec<Vec<T>> {
    stats.supersteps += 1;
    if comm.replay_live() {
        // Post-crash replay of the interrupted epoch: this superstep
        // re-executes at real recovery cost (fast-forwarded supersteps
        // don't count — their stats are overwritten at the checkpoint
        // restore).
        stats.recovered_supersteps += 1;
    }
    let outgoing: u64 = buckets.iter().map(|b| b.len() as u64).sum();
    stats.messages += outgoing;
    // Messaging-stack overhead at the sender (per logical message, at
    // paper scale)…
    comm.charge_comm(outgoing as f64 * cfg.per_message_cost * cfg.sim_scale);
    let inbound = comm.alltoallv(buckets);
    // …and at the receiver.
    let incoming: u64 = inbound.iter().map(|b| b.len() as u64).sum();
    comm.charge_comm(incoming as f64 * cfg.per_message_cost * cfg.sim_scale);
    inbound
}

/// Combines `(key, value)` messages sharing a key with `merge` — the
/// Pregel combiner, applied at the sending worker.
pub fn combine_messages<K: std::hash::Hash + Eq + Copy, V: Copy>(
    msgs: Vec<(K, V)>,
    merge: impl Fn(V, V) -> V,
) -> Vec<(K, V)> {
    let mut best: std::collections::HashMap<K, V> =
        std::collections::HashMap::with_capacity(msgs.len());
    for (k, v) in msgs {
        best.entry(k)
            .and_modify(|cur| *cur = merge(*cur, v))
            .or_insert(v);
    }
    best.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_net::{Cluster, CostModel};

    #[test]
    fn exchange_counts_and_routes() {
        let cfg = BspConfig::default();
        let out = Cluster::new(3, CostModel::free()).run(|c| {
            let mut stats = BspStats::default();
            let buckets: Vec<Vec<u32>> = (0..3).map(|d| vec![c.rank() as u32 * 10 + d]).collect();
            let inbound = superstep_exchange(c, buckets, &mut stats, &cfg);
            (inbound, stats)
        });
        for (me, o) in out.iter().enumerate() {
            let (inbound, stats) = &o.result;
            assert_eq!(stats.supersteps, 1);
            assert_eq!(stats.messages, 3);
            for (src, b) in inbound.iter().enumerate() {
                assert_eq!(b, &vec![src as u32 * 10 + me as u32]);
            }
        }
    }

    #[test]
    fn combiner_merges_same_key() {
        let msgs = vec![(1u32, 5u32), (2, 9), (1, 3), (1, 7)];
        let mut out = combine_messages(msgs, u32::min);
        out.sort_unstable();
        assert_eq!(out, vec![(1, 3), (2, 9)]);
    }

    #[test]
    fn combiner_empty() {
        let out = combine_messages(Vec::<(u32, u32)>::new(), u32::min);
        assert!(out.is_empty());
    }
}
