//! Chaos arming for the BSP baseline.
//!
//! The checkpoint/rollback machinery that used to live here — the
//! `BspRecovery` boundary protocol and the `run_recoverable` re-execution
//! loop — is now the workspace-wide recovery driver in [`mnd_engine`]
//! (DESIGN.md §6): every engine checkpoints and rolls back through the
//! same code, so resilience comparisons are apples-to-apples by
//! construction. This module keeps the BSP-facing names alive:
//!
//! * [`BspChaos`] is the engine-neutral [`mnd_engine::EngineChaos`] — one
//!   seeded `FaultPlan` from `mnd-chaos` arms the fabric injector and the
//!   phase-level schedule for a BSP run exactly as it does for the other
//!   engines.
//! * The vertex programs ([`crate::pregel_msf_chaos`], bfs) thread an
//!   [`mnd_engine::Recovery`] through their superstep loops and call
//!   [`mnd_engine::Recovery::boundary`] with their superstep count — the
//!   old `BspRecovery::superstep_boundary`, verbatim, gated on
//!   [`crate::BspConfig::checkpoint_interval`].
//!
//! The contract carried over unchanged: *recovery never perturbs the
//! logical fabric accounting*. Suppressed re-sends and replayed receives
//! are tracked separately (`RankStats::replayed_*`), so a recovered run's
//! `bytes_sent`/`messages_sent`/`bytes_received`/`messages_received`
//! byte-match the fault-free run — the invariant `tests/bsp_chaos.rs`
//! asserts.

/// Chaos arming bundle for a BSP run — an alias of the engine-neutral
/// [`mnd_engine::EngineChaos`], kept for source compatibility.
pub use mnd_engine::EngineChaos as BspChaos;
