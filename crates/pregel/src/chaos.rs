//! Chaos arming and rollback recovery for the BSP baseline.
//!
//! The D&C driver (`mnd-mst`) got the full fault plane in earlier work:
//! fabric faults from a `FaultInjector`, phase-boundary checkpoints, and
//! mid-phase crashes with replay-log rollback (DESIGN.md §5f). This module
//! gives the Pregel+ baseline the *same* machinery so resilience can be
//! compared apples-to-apples (DESIGN.md §5g):
//!
//! * [`BspChaos`] bundles the three hooks a chaos run needs — the
//!   fabric-level [`mnd_net::FaultInjector`], the phase-level
//!   [`mnd_hypar::ChaosControl`], and an observer for
//!   [`mnd_hypar::ChaosEvent`]s. One seeded `FaultPlan` from `mnd-chaos`
//!   implements both fault traits, so [`BspChaos::from_plan`] arms a whole
//!   run from a single plan.
//! * [`run_recoverable`] is the per-worker re-execution loop: it catches
//!   the [`MidPhaseCrash`] panic the fabric raises, pays the restart
//!   penalty, and re-runs the vertex program from the top — already-charged
//!   epochs fast-forward at zero cost against the replay log, the
//!   checkpoint written before the interrupted epoch is swapped in, and
//!   the interrupted epoch replays live (its inbound messages served from
//!   the log for free, its compute charged as real recovery work).
//! * [`BspRecovery::superstep_boundary`] is the recovery point the vertex
//!   programs call between supersteps: every
//!   [`crate::BspConfig::checkpoint_interval`] supersteps it stalls/
//!   checkpoints/crashes per the schedule, exactly mirroring the D&C
//!   driver's phase-boundary protocol.
//!
//! The contract carried over from §5f: *recovery never perturbs the
//! logical fabric accounting*. Suppressed re-sends and replayed receives
//! are tracked separately (`RankStats::replayed_*`), so a recovered run's
//! `bytes_sent`/`messages_sent`/`bytes_received`/`messages_received`
//! byte-match the fault-free run — the invariant `tests/bsp_chaos.rs`
//! asserts.

use std::cell::RefCell;
use std::collections::BTreeSet;

use mnd_hypar::{ChaosEvent, ChaosEventKind, ChaosHook, ObserverHook};
use mnd_net::{Comm, InjectorHook, MidPhaseCrash, Wire};

use crate::framework::BspConfig;

/// Everything that arms a BSP run against the chaos plane. The empty
/// value ([`BspChaos::none`]) is a fault-free run with zero overhead: no
/// checkpoints are written, no replay log is kept, and the simulated
/// numbers are byte-identical to a build without this module.
#[derive(Clone, Debug, Default)]
pub struct BspChaos {
    /// Fabric-level fault injector (drops/delays/duplicates/reorders),
    /// handed to the cluster.
    pub faults: InjectorHook,
    /// Phase-level schedule (stalls, crashes, mid-superstep crashes),
    /// consulted at superstep boundaries.
    pub control: ChaosHook,
    /// Sink for [`ChaosEvent`]s on the recovery path.
    pub observer: ObserverHook,
}

impl BspChaos {
    /// The unarmed (fault-free) value.
    pub fn none() -> Self {
        BspChaos::default()
    }

    /// Arms both fault layers from one seeded plan — typically an
    /// `Arc<mnd_chaos::FaultPlan>`, which implements both traits, so the
    /// BSP run and a D&C run armed with the same plan see the same fault
    /// schedule.
    pub fn from_plan<P>(plan: std::sync::Arc<P>) -> Self
    where
        P: mnd_net::FaultInjector + mnd_hypar::ChaosControl + 'static,
    {
        BspChaos {
            faults: InjectorHook::new(plan.clone()),
            control: ChaosHook::new(plan),
            observer: ObserverHook::none(),
        }
    }

    /// Attaches an observer for chaos events.
    pub fn with_observer(mut self, observer: ObserverHook) -> Self {
        self.observer = observer;
        self
    }

    /// Whether a phase-level schedule is armed (the recovery machinery is
    /// skipped entirely when not).
    pub fn is_armed(&self) -> bool {
        self.control.is_set()
    }
}

/// Virtual seconds to write a checkpoint of `bytes` wire bytes — same
/// storage model as the D&C driver (`MndMstRunner::checkpoint_seconds`),
/// so the two engines pay identical recovery costs.
pub(crate) fn checkpoint_seconds(bytes: u64, sim_scale: f64) -> f64 {
    1e-4 + bytes as f64 * sim_scale / 2e9
}

/// Virtual seconds to restart a crashed worker: respawn plus re-reading
/// the checkpoint.
pub(crate) fn restart_seconds(bytes: u64, sim_scale: f64) -> f64 {
    1.0 + checkpoint_seconds(bytes, sim_scale)
}

/// Per-execution recovery state a chaos-armed vertex program threads
/// through its superstep loop. Created by [`run_recoverable`]; the vertex
/// program only calls [`BspRecovery::superstep_boundary`].
pub struct BspRecovery<'a, S> {
    comm: &'a Comm,
    chaos: &'a BspChaos,
    interval: u64,
    sim_scale: f64,
    /// Superstep-boundary ordinal (advances at every *taken* boundary,
    /// identically on every worker — supersteps are lockstep).
    boundary: u32,
    /// Superstep count at the last taken boundary.
    last_ckpt: u64,
    /// Boundary whose checkpoint this re-execution resumes from.
    resume_boundary: Option<u32>,
    /// Last committed checkpoint `(boundary, state)` — owned by
    /// [`run_recoverable`] so it survives the crash unwind.
    checkpoint: &'a RefCell<Option<(u32, S)>>,
    /// Mid-superstep crash points that already fired (never re-armed).
    fired: &'a RefCell<BTreeSet<(u32, u64)>>,
}

impl<S: Clone + Wire> BspRecovery<'_, S> {
    /// A recovery point between supersteps. No-op unless a chaos schedule
    /// is armed and `supersteps` has advanced past the checkpoint
    /// interval; vertex programs call it unconditionally at the top of
    /// their superstep loops.
    ///
    /// With the boundary taken the worker, in order: serves any scheduled
    /// stall, clones `state` into a checkpoint (charged at the shared
    /// storage rate), commits it — garbage-collecting the send-side replay
    /// log, advancing the epoch, and retiring the whole log once past the
    /// plan's replay horizon — arms the next scheduled mid-superstep
    /// crash, and, if the schedule crashes it *at* this boundary, pays the
    /// restart penalty and restores the checkpoint it just wrote.
    ///
    /// During post-crash fast-forward the boundary is only traversed; at
    /// the resume boundary the stored checkpoint is swapped into `state`
    /// and the worker switches to live replay of the interrupted epoch.
    pub fn superstep_boundary(&mut self, state: &mut S, supersteps: u64) {
        if !self.chaos.control.is_set() || supersteps - self.last_ckpt < self.interval {
            return;
        }
        self.last_ckpt = supersteps;
        let b = self.boundary;
        self.boundary += 1;
        let rank = self.comm.rank();

        if self.comm.fast_forward() {
            self.comm.advance_epoch();
            if Some(b) == self.resume_boundary {
                let (cb, snap) = self
                    .checkpoint
                    .borrow()
                    .clone()
                    .expect("resume boundary must have a committed checkpoint");
                debug_assert_eq!(cb, b, "stale checkpoint in the slot");
                let bytes = snap.wire_bytes();
                *state = snap;
                self.comm.set_fast_forward(false);
                self.comm.set_replay_live(true);
                self.comm.note_checkpoint_restore();
                self.emit(ChaosEventKind::CheckpointRestore, b, bytes);
                self.arm_crash_for_current_epoch();
            }
            return;
        }
        // Replay normally goes live inside send/recv when it catches up
        // with the crash point; an epoch tail without fabric ops ends
        // here at the latest.
        self.comm.set_replay_live(false);

        let stall = self.chaos.control.stall_seconds(rank, b);
        if stall > 0.0 {
            self.comm.stall(stall);
            self.emit(ChaosEventKind::Stall, b, (stall * 1e6) as u64);
        }

        let snap = state.clone();
        let bytes = snap.wire_bytes();
        self.comm.compute(checkpoint_seconds(bytes, self.sim_scale));
        self.comm.note_checkpoint_write();
        self.emit(ChaosEventKind::CheckpointWrite, b, bytes);
        *self.checkpoint.borrow_mut() = Some((b, snap));
        // Commit: rollback can never re-enter epochs at or before this
        // boundary.
        self.comm.gc_replay_sends(self.comm.epoch());
        self.comm.advance_epoch();
        // Past the plan's replay horizon no mid-superstep crash can fire
        // on this worker again: retire the log (ROADMAP replay-log GC).
        if let Some(h) = self.chaos.control.replay_horizon(rank) {
            if self.comm.epoch() >= h {
                self.comm.retire_replay_log();
            }
        }
        self.arm_crash_for_current_epoch();

        if self.chaos.control.crashes_at(rank, b) {
            self.emit(ChaosEventKind::Crash, b, 0);
            // The crash wipes the worker's in-memory state; the restart
            // pays respawn + checkpoint re-read, then the state comes
            // back from stable storage (the slot keeps its copy: a later
            // mid-superstep crash may need it again).
            self.comm.stall(restart_seconds(bytes, self.sim_scale));
            let (_, snap) = self
                .checkpoint
                .borrow()
                .clone()
                .expect("checkpoint written above");
            *state = snap;
            self.comm.note_checkpoint_restore();
            self.emit(ChaosEventKind::CheckpointRestore, b, bytes);
        }
    }

    /// Arms the plan's mid-superstep crash for the epoch the worker is
    /// in, unless that crash already fired (a fired crash must not loop).
    fn arm_crash_for_current_epoch(&self) {
        if self.comm.fast_forward() {
            return;
        }
        let epoch = self.comm.epoch();
        if let Some(op) = self.chaos.control.mid_phase_crash(self.comm.rank(), epoch) {
            if !self.fired.borrow().contains(&(epoch, op)) {
                self.comm.arm_mid_phase_crash(op);
            }
        }
    }

    /// Emits a chaos event to the configured observer (suppressed during
    /// fast-forward: those boundaries' events were reported before the
    /// crash).
    fn emit(&self, kind: ChaosEventKind, boundary: u32, detail: u64) {
        if self.comm.fast_forward() {
            return;
        }
        self.chaos.observer.emit_chaos(&ChaosEvent {
            rank: self.comm.rank() as u32,
            kind,
            level: 0,
            boundary,
            time: self.comm.now(),
            detail,
        });
    }
}

/// Runs a vertex program under the rollback-recovery loop. `body` must be
/// a deterministic from-the-top execution of the whole program (state
/// initialisation included) that calls
/// [`BspRecovery::superstep_boundary`] at its superstep-loop heads; a
/// [`MidPhaseCrash`] raised by the fabric unwinds it, and the loop re-runs
/// it with the recovery mode flags set (see module docs). Unarmed, the
/// body runs exactly once with every boundary a no-op.
pub(crate) fn run_recoverable<S, R>(
    comm: &Comm,
    chaos: &BspChaos,
    cfg: &BspConfig,
    body: impl Fn(&mut BspRecovery<'_, S>) -> R,
) -> R
where
    S: Clone + Wire,
{
    if chaos.is_armed() {
        mnd_net::install_quiet_crash_hook();
        // A horizon of 0 means the plan never crashes this worker
        // mid-superstep: no rollback can ever read the log, so don't
        // build one.
        if chaos.control.replay_horizon(comm.rank()) != Some(0) {
            comm.enable_replay_log();
        }
    }
    let checkpoint: RefCell<Option<(u32, S)>> = RefCell::new(None);
    let fired: RefCell<BTreeSet<(u32, u64)>> = RefCell::new(BTreeSet::new());
    // `None` = first execution; `Some(rb)` = re-execution resuming from
    // checkpoint boundary `rb` (`Some(None)` = crash in epoch 0, no
    // checkpoint exists: replay the whole prefix live from scratch).
    let mut resume: Option<Option<u32>> = None;
    loop {
        let mut rp = BspRecovery {
            comm,
            chaos,
            interval: cfg.checkpoint_interval.max(1),
            sim_scale: cfg.sim_scale,
            boundary: 0,
            last_ckpt: 0,
            resume_boundary: resume.flatten(),
            checkpoint: &checkpoint,
            fired: &fired,
        };
        if let Some(rb) = resume {
            match rb {
                Some(_) => comm.set_fast_forward(true),
                None => comm.set_replay_live(true),
            }
        }
        rp.arm_crash_for_current_epoch();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rp)));
        match result {
            Ok(r) => {
                comm.clear_replay_log();
                return r;
            }
            Err(payload) => match payload.downcast::<MidPhaseCrash>() {
                Ok(crash) => {
                    let crash = *crash;
                    fired.borrow_mut().insert((crash.epoch, crash.op));
                    comm.set_fast_forward(false);
                    comm.set_replay_live(false);
                    rp.emit(ChaosEventKind::MidPhaseCrash, crash.epoch, crash.op);
                    // The restart pays respawn + re-reading whatever
                    // checkpoint exists; replayed bytes are free but
                    // re-executed compute is charged as it re-runs.
                    let ckpt_bytes = checkpoint
                        .borrow()
                        .as_ref()
                        .map_or(0, |(_, s)| s.wire_bytes());
                    comm.stall(restart_seconds(ckpt_bytes, cfg.sim_scale));
                    comm.reset_sequences();
                    resume = Some(if crash.epoch == 0 {
                        None
                    } else {
                        Some(crash.epoch - 1)
                    });
                }
                Err(other) => std::panic::resume_unwind(other),
            },
        }
    }
}
