//! [`Engine`] adapter for the BSP baseline: packages a rank count, a
//! platform, and a [`BspConfig`] into the engine-registry contract so
//! benches and agreement tests can drive the baseline next to the D&C
//! driver and the min-plus engine without a per-engine arm.

use mnd_device::NodePlatform;
use mnd_engine::{Engine, EngineChaos, EngineReport};
use mnd_graph::EdgeList;

use crate::framework::BspConfig;
use crate::msf::pregel_msf_chaos;

/// The Pregel+-style BSP MSF as a registry engine.
#[derive(Clone, Debug)]
pub struct BspEngine {
    /// Number of BSP workers.
    pub nranks: usize,
    /// Node hardware + interconnect.
    pub platform: NodePlatform,
    /// BSP optimisation and chaos-cadence knobs.
    pub cfg: BspConfig,
}

impl BspEngine {
    /// A BSP engine on the AMD-cluster platform with default tuning.
    pub fn new(nranks: usize) -> Self {
        BspEngine {
            nranks,
            platform: NodePlatform::amd_cluster(),
            cfg: BspConfig::default(),
        }
    }
}

impl Engine for BspEngine {
    fn name(&self) -> &'static str {
        "bsp"
    }

    fn description(&self) -> &'static str {
        "Pregel+-style vertex-centric Boruvka baseline: supersteps with pointer-jumping contraction"
    }

    fn run_chaos(&self, el: &EdgeList, chaos: &EngineChaos) -> EngineReport {
        let r = pregel_msf_chaos(el, self.nranks, &self.platform, &self.cfg, chaos);
        EngineReport {
            msf: r.msf,
            total_time: r.total_time,
            comm_time: r.comm_time,
            rank_stats: r.rank_stats,
            recovered_units: r.recovered_supersteps,
        }
    }
}
