//! Level-synchronised BSP BFS — the Pregel textbook algorithm, used as the
//! counterpart of `mnd_mst::bfs::distributed_bfs` to contrast execution
//! models on a second application: BSP pays **one superstep per BFS
//! level**, the divide-and-conquer version one exchange per *border
//! crossing*.

use std::sync::Arc;

use mnd_device::NodePlatform;
use mnd_graph::partition::{owner_of, partition_1d};
use mnd_graph::types::VertexId;
use mnd_graph::{CsrGraph, EdgeList};
use mnd_net::{Cluster, Comm, RankStats, Wire};

use mnd_engine::{run_recoverable, Recoverable, Recovery};

use crate::chaos::BspChaos;
use crate::framework::{superstep_exchange, BspConfig, BspPartitioning, BspStats};

/// Result of a BSP BFS run.
#[derive(Clone, Debug)]
pub struct BspBfsReport {
    /// Hop distances (`u64::MAX` = unreachable).
    pub dist: Vec<u64>,
    /// Simulated makespan.
    pub total_time: f64,
    /// Max communication time across workers.
    pub comm_time: f64,
    /// Supersteps executed (= BFS levels + 1).
    pub supersteps: u64,
    /// Per-worker statistics.
    pub rank_stats: Vec<RankStats>,
}

/// The mutable per-worker BFS state — the checkpoint unit for rollback
/// recovery under a chaos plan (see [`crate::chaos`]).
#[derive(Clone)]
struct BfsState {
    /// Hop distance of each owned vertex (`u64::MAX` = unreached).
    dist: Vec<u64>,
    /// Frontier vertices owned by this worker.
    active: Vec<VertexId>,
    /// Superstep counters, checkpointed with the state.
    stats: BspStats,
}

impl Wire for BfsState {
    fn wire_bytes(&self) -> u64 {
        self.dist.wire_bytes() + self.active.wire_bytes() + 4 * 8
    }
}

impl Recoverable for BfsState {
    type State = BfsState;
    fn capture(&self) -> BfsState {
        self.clone()
    }
    fn restore(&mut self, snapshot: BfsState) {
        *self = snapshot;
    }
}

/// Runs level-synchronised BFS from `source` on `nranks` BSP workers.
pub fn pregel_bfs(
    el: &EdgeList,
    source: VertexId,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &BspConfig,
) -> BspBfsReport {
    pregel_bfs_chaos(el, source, nranks, platform, cfg, &BspChaos::none())
}

/// [`pregel_bfs`] with the chaos plane armed: fabric faults plus
/// superstep-boundary checkpoints and mid-superstep crash rollback (see
/// [`crate::chaos`]). With [`BspChaos::none`] this is exactly the
/// fault-free run.
pub fn pregel_bfs_chaos(
    el: &EdgeList,
    source: VertexId,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &BspConfig,
    chaos: &BspChaos,
) -> BspBfsReport {
    assert!(source < el.num_vertices());
    let csr = Arc::new(CsrGraph::from_edge_list(el));
    let cluster = Cluster::new(nranks, platform.network.scaled(cfg.sim_scale))
        .with_fault_hook(chaos.faults.clone());
    let outcomes = cluster.run(|comm| {
        run_recoverable(
            comm,
            &chaos.control,
            &chaos.observer,
            cfg.checkpoint_interval,
            cfg.sim_scale,
            |rp| worker_bfs(comm, &csr, source, platform, cfg, rp),
        )
    });
    let total_time = Cluster::makespan(&outcomes);
    let mut dist = None;
    let mut supersteps = 0;
    let mut rank_stats = Vec::new();
    for o in &outcomes {
        let (d, stats) = &o.result;
        if let Some(d) = d {
            dist = Some(d.clone());
        }
        supersteps = supersteps.max(stats.supersteps);
        rank_stats.push(o.stats.clone());
    }
    let comm_time = rank_stats.iter().map(|s| s.comm_time).fold(0.0, f64::max);
    BspBfsReport {
        dist: dist.expect("worker 0 gathers"),
        total_time,
        comm_time,
        supersteps,
        rank_stats,
    }
}

fn worker_bfs(
    comm: &Comm,
    csr: &CsrGraph,
    source: VertexId,
    platform: &NodePlatform,
    cfg: &BspConfig,
    rp: &mut Recovery<'_, BfsState>,
) -> (Option<Vec<u64>>, BspStats) {
    let me = comm.rank();
    let p = comm.size();
    let charge = |items: u64| {
        let m = &platform.cpu;
        comm.compute(items as f64 * cfg.sim_scale / (m.edge_throughput * m.efficiency));
    };
    // Same partitioning options as the MSF baseline.
    let hash_mode = cfg.partitioning == BspPartitioning::Hash;
    let ranges = if hash_mode {
        Vec::new()
    } else {
        partition_1d(csr, p, 0.0)
    };
    let owner = |v: VertexId| -> usize {
        if hash_mode {
            v as usize % p
        } else {
            owner_of(&ranges, v)
        }
    };
    let mine: Vec<VertexId> = if hash_mode {
        ((me as VertexId)..csr.num_vertices()).step_by(p).collect()
    } else {
        ranges[me].iter().collect()
    };
    let first = mine.first().copied().unwrap_or(0);
    let idx = |v: VertexId| -> usize {
        if hash_mode {
            (v as usize - me) / p
        } else {
            (v - first) as usize
        }
    };

    let mut st = BfsState {
        dist: vec![u64::MAX; mine.len()],
        active: Vec::new(),
        stats: BspStats::default(),
    };
    if owner(source) == me {
        st.dist[idx(source)] = 0;
        st.active.push(source);
    }

    // One superstep per level: actives send dist+1 to every neighbour.
    loop {
        // Recovery point between levels (no-op unless chaos is armed and
        // the checkpoint interval has elapsed).
        let ss = st.stats.supersteps;
        rp.boundary(&mut st, ss);

        let mut buckets: Vec<Vec<(VertexId, u64)>> = (0..p).map(|_| Vec::new()).collect();
        let mut scanned = 0u64;
        for &u in &st.active {
            let du = st.dist[idx(u)];
            for (v, _) in csr.neighbors(u) {
                scanned += 1;
                buckets[owner(v)].push((v, du + 1));
            }
        }
        charge(scanned);
        if cfg.combine {
            for b in buckets.iter_mut() {
                b.sort_unstable();
                b.dedup_by_key(|(v, _)| *v);
            }
        }
        let inbound = superstep_exchange(comm, buckets, &mut st.stats, cfg);
        st.active.clear();
        let mut applied = 0u64;
        for b in inbound {
            for (v, d) in b {
                applied += 1;
                let dv = &mut st.dist[idx(v)];
                if *dv > d {
                    *dv = d;
                    st.active.push(v);
                }
            }
        }
        charge(applied);
        if comm.allreduce_u64(st.active.len() as u64, |a, b| a + b) == 0 {
            break;
        }
    }

    let stats = st.stats;
    // Gather: distances must come back in global vertex order. With hash
    // partitioning worker w owns vertices w, w+p, …, so rank 0 interleaves.
    let gathered = comm.gather_vec(0, st.dist);
    let all = gathered.map(|parts| {
        let n = csr.num_vertices() as usize;
        let mut out = vec![u64::MAX; n];
        for (w, part) in parts.into_iter().enumerate() {
            if hash_mode {
                for (i, d) in part.into_iter().enumerate() {
                    out[w + i * p] = d;
                }
            } else {
                let lo = ranges[w].start as usize;
                for (i, d) in part.into_iter().enumerate() {
                    out[lo + i] = d;
                }
            }
        }
        out
    });
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::components::bfs_distances;
    use mnd_graph::gen;

    fn check(el: &EdgeList, source: VertexId, nranks: usize, cfg: &BspConfig) -> BspBfsReport {
        let r = pregel_bfs(el, source, nranks, &NodePlatform::amd_cluster(), cfg);
        let oracle = bfs_distances(&CsrGraph::from_edge_list(el), source);
        assert_eq!(r.dist, oracle);
        r
    }

    #[test]
    fn matches_sequential_hash_and_range() {
        let el = gen::gnm(300, 1200, 3);
        for part in [BspPartitioning::Hash, BspPartitioning::Range1D] {
            let cfg = BspConfig {
                partitioning: part,
                ..Default::default()
            };
            for nranks in [1, 4] {
                check(&el, 0, nranks, &cfg);
            }
        }
    }

    #[test]
    fn supersteps_equal_levels_plus_one() {
        let el = gen::path(100, 5);
        let r = check(&el, 0, 4, &BspConfig::default());
        // A 100-vertex path from one end: 99 levels -> 100 supersteps.
        assert_eq!(r.supersteps, 100);
    }

    #[test]
    fn disconnected_unreached() {
        let u = gen::disconnected_union(&[gen::cycle(10, 1), gen::cycle(10, 2)]);
        let r = check(&u, 0, 3, &BspConfig::default());
        assert!(r.dist[10..].iter().all(|&d| d == u64::MAX));
    }

    #[test]
    fn dnc_bfs_needs_far_fewer_rounds_than_bsp_levels() {
        // The model contrast on a second application: a deep graph costs
        // BSP one superstep per level, the divide-and-conquer BFS one
        // exchange per border crossing.
        let el = gen::road_grid(40, 40, 0.02, 0.2, 7);
        let bsp = check(&el, 0, 4, &BspConfig::default());
        let dnc = mnd_mst::bfs::distributed_bfs(&el, 0, 4, &NodePlatform::amd_cluster(), 1.0);
        assert_eq!(bsp.dist, dnc.dist);
        assert!(
            dnc.rounds * 5 < bsp.supersteps,
            "dnc rounds {} vs bsp supersteps {}",
            dnc.rounds,
            bsp.supersteps
        );
    }
}
