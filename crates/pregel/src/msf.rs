//! The BSP minimum-spanning-forest algorithm (Pregel+/GPS style).
//!
//! Vertices never move between workers; components are tracked by parent
//! pointers and resolved with conjoined-tree + pointer-jumping supersteps.
//! See the crate docs for the round structure.
//!
//! The worker's mutable state lives in [`MsfState`] so that a chaos-armed
//! run ([`pregel_msf_chaos`]) can checkpoint it at superstep boundaries
//! and roll back after an injected mid-superstep crash (see
//! [`crate::chaos`]). Everything else in the worker (partition maps,
//! the CSR graph) is immutable and rebuilt deterministically on
//! re-execution.

use std::sync::Arc;

use mnd_device::NodePlatform;
use mnd_graph::partition::{owner_of, partition_1d};
use mnd_graph::types::{VertexId, WEdge};
use mnd_graph::{CsrGraph, EdgeList};
use mnd_kernels::msf::MsfResult;
use mnd_net::{Cluster, Comm, RankStats, Wire};

use mnd_engine::{run_recoverable, Recoverable, Recovery};

use crate::chaos::BspChaos;
use crate::framework::{
    combine_messages, superstep_exchange, BspConfig, BspPartitioning, BspStats,
};

/// Outcome of a BSP MSF run — mirrors `MndMstReport` so benches can print
/// both side by side.
#[derive(Clone, Debug)]
pub struct PregelReport {
    /// The global minimum spanning forest.
    pub msf: MsfResult,
    /// Simulated makespan (max final virtual clock).
    pub total_time: f64,
    /// Max communication time across workers.
    pub comm_time: f64,
    /// Supersteps executed (max across workers — they run in lockstep, so
    /// all workers report the same number).
    pub supersteps: u64,
    /// Boruvka rounds.
    pub rounds: u64,
    /// Supersteps re-executed at recovery cost after injected crashes,
    /// summed over workers (0 on fault-free runs).
    pub recovered_supersteps: u64,
    /// Per-worker raw statistics.
    pub rank_stats: Vec<RankStats>,
}

/// One adjacency entry at a worker: the original neighbour vertex, the
/// neighbour's current supervertex (maintained by update supersteps), and
/// the original edge.
#[derive(Clone, Copy, Debug)]
struct AdjEntry {
    target_vertex: VertexId,
    target_super: VertexId,
    orig: WEdge,
}

impl Wire for AdjEntry {
    fn wire_bytes(&self) -> u64 {
        self.target_vertex.wire_bytes() + self.target_super.wire_bytes() + self.orig.wire_bytes()
    }
}

/// The mutable per-worker state of the BSP MSF — the checkpoint unit for
/// rollback recovery. Cloning it captures everything a re-executed worker
/// needs to resume at a superstep boundary.
#[derive(Clone)]
struct MsfState {
    /// Supervertex (root) of each owned vertex.
    parent: Vec<VertexId>,
    /// Live adjacency of each owned vertex (pruned as components merge).
    adj: Vec<Vec<AdjEntry>>,
    /// MSF edges this worker has settled so far.
    msf_local: Vec<WEdge>,
    /// Parents as of the last adjacency broadcast: only vertices whose
    /// parent changed re-broadcast (vote-to-halt-style traffic reduction;
    /// receivers keep valid entries for unchanged neighbours).
    broadcast_parent: Vec<VertexId>,
    /// Superstep/round/message counters (checkpointed with the state so
    /// restored counters stay consistent with the restored supersteps).
    stats: BspStats,
}

impl Wire for MsfState {
    fn wire_bytes(&self) -> u64 {
        self.parent.wire_bytes()
            + self.adj.wire_bytes()
            + self.msf_local.wire_bytes()
            + self.broadcast_parent.wire_bytes()
            + 4 * 8 // the BspStats counters
    }
}

impl Recoverable for MsfState {
    type State = MsfState;
    fn capture(&self) -> MsfState {
        self.clone()
    }
    fn restore(&mut self, snapshot: MsfState) {
        *self = snapshot;
    }
}

/// Runs the BSP MSF on `nranks` workers over the platform's network and CPU
/// model. Returns the unique MSF (oracle-comparable) plus simulated times.
pub fn pregel_msf(
    el: &EdgeList,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &BspConfig,
) -> PregelReport {
    pregel_msf_chaos(el, nranks, platform, cfg, &BspChaos::none())
}

/// [`pregel_msf`] with the chaos plane armed: fabric faults from
/// `chaos.faults`, and superstep-boundary checkpoints with mid-superstep
/// crash rollback from `chaos.control` (see [`crate::chaos`]). With
/// [`BspChaos::none`] this is exactly the fault-free run.
pub fn pregel_msf_chaos(
    el: &EdgeList,
    nranks: usize,
    platform: &NodePlatform,
    cfg: &BspConfig,
    chaos: &BspChaos,
) -> PregelReport {
    assert!(nranks >= 1);
    let csr = Arc::new(CsrGraph::from_edge_list(el));
    let n = el.num_vertices();
    let network = platform.network.scaled(cfg.sim_scale);
    let cluster = Cluster::new(nranks, network).with_fault_hook(chaos.faults.clone());

    let outcomes = cluster.run(|comm| {
        run_recoverable(
            comm,
            &chaos.control,
            &chaos.observer,
            cfg.checkpoint_interval,
            cfg.sim_scale,
            |rp| worker_main(comm, &csr, n, platform, cfg, rp),
        )
    });

    let total_time = Cluster::makespan(&outcomes);
    let mut msf = None;
    let mut supersteps = 0;
    let mut rounds = 0;
    let mut recovered_supersteps = 0;
    let mut rank_stats = Vec::new();
    for o in &outcomes {
        let (m, stats) = &o.result;
        if let Some(m) = m {
            msf = Some(m.clone());
        }
        supersteps = supersteps.max(stats.supersteps);
        rounds = rounds.max(stats.rounds);
        recovered_supersteps += stats.recovered_supersteps;
        rank_stats.push(o.stats.clone());
    }
    let comm_time = rank_stats.iter().map(|s| s.comm_time).fold(0.0, f64::max);
    PregelReport {
        msf: msf.expect("worker 0 returns the MSF"),
        total_time,
        comm_time,
        supersteps,
        rounds,
        recovered_supersteps,
        rank_stats,
    }
}

fn worker_main(
    comm: &Comm,
    csr: &CsrGraph,
    n: VertexId,
    platform: &NodePlatform,
    cfg: &BspConfig,
    rp: &mut Recovery<'_, MsfState>,
) -> (Option<MsfResult>, BspStats) {
    let me = comm.rank();
    let p = comm.size();
    let charge = |comm: &Comm, items: u64| {
        let m = &platform.cpu;
        comm.compute(items as f64 * cfg.sim_scale / (m.edge_throughput * m.efficiency));
    };

    // Vertex-to-worker map: Pregel+'s default hash partitioning, or 1D
    // ranges for the ablation.
    let hash_mode = cfg.partitioning == BspPartitioning::Hash;
    let ranges = if hash_mode {
        Vec::new()
    } else {
        partition_1d(csr, p, 0.0)
    };
    let owner = |v: VertexId| -> usize {
        if hash_mode {
            v as usize % p
        } else {
            owner_of(&ranges, v)
        }
    };
    // Owned vertices in ascending order; `idx` inverts the enumeration.
    let mine: Vec<VertexId> = if hash_mode {
        ((me as VertexId)..csr.num_vertices()).step_by(p).collect()
    } else {
        ranges[me].iter().collect()
    };
    let count = mine.len();
    let first = mine.first().copied().unwrap_or(0);
    let idx = move |v: VertexId| -> usize {
        if hash_mode {
            (v as usize - me) / p
        } else {
            (v - first) as usize
        }
    };
    let mut st = MsfState {
        parent: mine.clone(),
        adj: mine
            .iter()
            .map(|&u| {
                csr.neighbors(u)
                    .map(|(v, w)| AdjEntry {
                        target_vertex: v,
                        target_super: v,
                        orig: WEdge::new(u, v, w),
                    })
                    .collect()
            })
            .collect(),
        msf_local: Vec::new(),
        broadcast_parent: mine.clone(),
        stats: BspStats::default(),
    };
    charge(comm, st.adj.iter().map(|a| a.len() as u64).sum());

    loop {
        // Recovery point between Boruvka rounds (no-op unless chaos is
        // armed and the checkpoint interval has elapsed).
        let ss = st.stats.supersteps;
        rp.boundary(&mut st, ss);

        // ---- S1: candidate election --------------------------------------
        let mut cand_msgs: Vec<(VertexId, (WEdge, VertexId))> = Vec::new();
        let mut scanned = 0u64;
        for ui in 0..count {
            let pu = st.parent[ui];
            let mut best: Option<(WEdge, VertexId)> = None;
            for e in &st.adj[ui] {
                scanned += 1;
                if e.target_super == pu {
                    continue;
                }
                match &best {
                    Some((b, _)) if *b <= e.orig => {}
                    _ => best = Some((e.orig, e.target_super)),
                }
            }
            if let Some(b) = best {
                cand_msgs.push((pu, b));
            }
        }
        charge(comm, scanned);
        let my_candidates = cand_msgs.len() as u64;
        let total_candidates = comm.allreduce_u64(my_candidates, |a, b| a + b);
        if total_candidates == 0 {
            break;
        }
        st.stats.rounds += 1;
        if cfg.combine {
            cand_msgs = combine_messages(cand_msgs, |a, b| if a.0 <= b.0 { a } else { b });
        }
        let mut buckets: Vec<Vec<(VertexId, WEdge, VertexId)>> =
            (0..p).map(|_| Vec::new()).collect();
        for (dest, (e, other)) in cand_msgs {
            buckets[owner(dest)].push((dest, e, other));
        }
        let inbound = superstep_exchange(comm, buckets, &mut st.stats, cfg);

        // Roots pick the component minimum.
        let mut best_at: std::collections::HashMap<VertexId, (WEdge, VertexId)> =
            std::collections::HashMap::new();
        let mut inbound_count = 0u64;
        for b in inbound {
            for (dest, e, other) in b {
                inbound_count += 1;
                debug_assert_eq!(owner(dest), me);
                best_at
                    .entry(dest)
                    .and_modify(|cur| {
                        if e < cur.0 {
                            *cur = (e, other);
                        }
                    })
                    .or_insert((e, other));
            }
        }
        charge(comm, inbound_count);

        // ---- S2: merge proposals ----------------------------------------
        // pending[s] = (chosen edge, chosen target supervertex)
        let mut pending: std::collections::HashMap<VertexId, (WEdge, VertexId)> =
            std::collections::HashMap::new();
        let mut buckets: Vec<Vec<(VertexId, VertexId, WEdge)>> =
            (0..p).map(|_| Vec::new()).collect();
        for (&s, &(e, t)) in &best_at {
            debug_assert_eq!(st.parent[idx(s)], s, "candidates are addressed to roots");
            pending.insert(s, (e, t));
            st.parent[idx(s)] = t; // tentative link; mutual pairs fixed below
            buckets[owner(t)].push((t, s, e));
        }
        let inbound = superstep_exchange(comm, buckets, &mut st.stats, cfg);

        // ---- S3: conjoined-tree resolution --------------------------------
        let mut proposals = 0u64;
        for b in inbound {
            for (t, s, e) in b {
                proposals += 1;
                if let Some(&(my_e, my_t)) = pending.get(&t) {
                    if my_t == s && my_e == e {
                        // Mutual: smaller id stays root and keeps the edge;
                        // larger id drops its duplicate.
                        if t < s {
                            st.parent[idx(t)] = t;
                        } else {
                            pending.remove(&t);
                        }
                    }
                }
            }
        }
        charge(comm, proposals);
        st.msf_local.extend(pending.values().map(|&(e, _)| e));

        // ---- S4: pointer jumping ------------------------------------------
        loop {
            // Recovery point between jump iterations: long compression
            // chains are where a crash loses the most BSP work.
            let ss = st.stats.supersteps;
            rp.boundary(&mut st, ss);

            let mut buckets: Vec<Vec<(VertexId, VertexId)>> = (0..p).map(|_| Vec::new()).collect();
            let mut asked = 0u64;
            for (ui, &u) in mine.iter().enumerate().take(count) {
                let pu = st.parent[ui];
                if pu != u {
                    buckets[owner(pu)].push((pu, u));
                    asked += 1;
                }
            }
            charge(comm, asked);
            let queries = superstep_exchange(comm, buckets, &mut st.stats, cfg);
            let mut buckets: Vec<Vec<(VertexId, VertexId)>> = (0..p).map(|_| Vec::new()).collect();
            let mut served = 0u64;
            for b in queries {
                for (dest_parent, asker) in b {
                    served += 1;
                    buckets[owner(asker)].push((asker, st.parent[idx(dest_parent)]));
                }
            }
            charge(comm, served);
            let replies = superstep_exchange(comm, buckets, &mut st.stats, cfg);
            let mut changed = 0u64;
            for b in replies {
                for (asker, gp) in b {
                    let ui = idx(asker);
                    if st.parent[ui] != gp {
                        st.parent[ui] = gp;
                        changed = 1;
                    }
                }
            }
            if comm.allreduce_u64(changed, u64::max) == 0 {
                break;
            }
        }

        // ---- S5: adjacency relabel ----------------------------------------
        // LALP: high-degree vertices broadcast one update per destination
        // worker (mirroring); everyone else messages per live edge — the
        // Pregel+ design, and the dominant BSP traffic.
        let mut update_msgs = 0u64;
        let mut buckets: Vec<Vec<(VertexId, VertexId)>> = (0..p).map(|_| Vec::new()).collect();
        for (ui, &u) in mine.iter().enumerate().take(count) {
            if st.adj[ui].is_empty() || st.parent[ui] == st.broadcast_parent[ui] {
                continue;
            }
            st.broadcast_parent[ui] = st.parent[ui];
            let mirrored = cfg
                .mirror_threshold
                .map(|t| st.adj[ui].len() as u64 >= t)
                .unwrap_or(false);
            if mirrored {
                let mut dests: Vec<usize> =
                    st.adj[ui].iter().map(|e| owner(e.target_vertex)).collect();
                dests.sort_unstable();
                dests.dedup();
                for d in dests {
                    buckets[d].push((u, st.parent[ui]));
                    update_msgs += 1;
                }
            } else {
                for e in &st.adj[ui] {
                    buckets[owner(e.target_vertex)].push((u, st.parent[ui]));
                    update_msgs += 1;
                }
            }
        }
        let inbound = superstep_exchange(comm, buckets, &mut st.stats, cfg);
        charge(comm, update_msgs);
        // Apply updates with one relabel sweep over the live adjacency.
        // (Indexing entries by position would go stale across the per-round
        // pruning below; a keyed map cannot.)
        let mut new_super: std::collections::HashMap<VertexId, VertexId> =
            std::collections::HashMap::new();
        for b in inbound {
            for (src, ns) in b {
                new_super.insert(src, ns);
            }
        }
        let mut applied = 0u64;
        for a in st.adj.iter_mut() {
            for e in a.iter_mut() {
                applied += 1;
                if let Some(&ns) = new_super.get(&e.target_vertex) {
                    e.target_super = ns;
                }
            }
        }
        charge(comm, applied);

        // Prune internal edges (symmetric on both endpoints' workers).
        let mut pruned_scan = 0u64;
        for ui in 0..count {
            let pu = st.parent[ui];
            pruned_scan += st.adj[ui].len() as u64;
            st.adj[ui].retain(|e| e.target_super != pu);
        }
        charge(comm, pruned_scan);
    }

    // Gather the forest at worker 0.
    let gathered = comm.gather_vec(0, st.msf_local);
    let msf = gathered.map(|parts| {
        let all: Vec<WEdge> = parts.into_iter().flatten().collect();
        MsfResult::from_edges(n, all)
    });
    (msf, st.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnd_graph::gen;
    use mnd_kernels::oracle::kruskal_msf;

    fn check(el: &EdgeList, nranks: usize) -> PregelReport {
        let r = pregel_msf(
            el,
            nranks,
            &NodePlatform::amd_cluster(),
            &BspConfig::default(),
        );
        assert_eq!(r.msf, kruskal_msf(el), "nranks={nranks}");
        r
    }

    #[test]
    fn matches_oracle_single_worker() {
        check(&gen::gnm(200, 800, 1), 1);
    }

    #[test]
    fn matches_oracle_many_workers_and_families() {
        for (el, name) in [
            (gen::gnm(300, 1200, 2), "gnm"),
            (gen::watts_strogatz(200, 6, 0.2, 3), "ws"),
            (gen::rmat(256, 2048, gen::RmatProbs::GRAPH500, 4), "rmat"),
            (gen::road_grid(15, 15, 0.02, 0.38, 5), "road"),
            (gen::star(100, 6), "star"),
        ] {
            for nranks in [2, 4, 7] {
                let r = pregel_msf(
                    &el,
                    nranks,
                    &NodePlatform::amd_cluster(),
                    &BspConfig::default(),
                );
                assert_eq!(r.msf, kruskal_msf(&el), "{name} nranks={nranks}");
            }
        }
    }

    #[test]
    fn handles_disconnected_and_edgeless() {
        let u = gen::disconnected_union(&[gen::path(20, 1), gen::cycle(15, 2)]);
        let r = check(&u, 3);
        assert_eq!(r.msf.num_components, 2);
        let empty = EdgeList::new(5);
        let r = pregel_msf(
            &empty,
            2,
            &NodePlatform::amd_cluster(),
            &BspConfig::default(),
        );
        assert!(r.msf.edges.is_empty());
    }

    #[test]
    fn supersteps_accumulate_and_cost_time() {
        let el = gen::gnm(400, 1600, 7);
        let r = check(&el, 4);
        assert!(r.supersteps > 10, "supersteps {}", r.supersteps);
        assert!(r.rounds >= 2);
        assert!(r.comm_time > 0.0);
        assert!(r.total_time > r.comm_time);
        assert_eq!(r.recovered_supersteps, 0, "fault-free run recovers nothing");
    }

    #[test]
    fn mirroring_reduces_messages_on_skewed_graphs() {
        let el = gen::rmat(512, 8192, gen::RmatProbs::GRAPH500, 9);
        let plat = NodePlatform::amd_cluster();
        let mirrored = pregel_msf(
            &el,
            4,
            &plat,
            &BspConfig {
                mirror_threshold: Some(16),
                ..Default::default()
            },
        );
        let plain = pregel_msf(
            &el,
            4,
            &plat,
            &BspConfig {
                mirror_threshold: None,
                ..Default::default()
            },
        );
        assert_eq!(mirrored.msf, plain.msf);
        let bytes = |r: &PregelReport| r.rank_stats.iter().map(|s| s.bytes_sent).sum::<u64>();
        assert!(
            bytes(&mirrored) < bytes(&plain),
            "mirrored {} !< plain {}",
            bytes(&mirrored),
            bytes(&plain)
        );
    }

    #[test]
    fn deterministic() {
        let el = gen::gnm(300, 1200, 11);
        let a = check(&el, 4);
        let b = check(&el, 4);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.supersteps, b.supersteps);
    }
}
