//! Property tests of the BSP baseline: oracle equality across every
//! optimisation combination, and superstep-count structure.

use mnd_device::NodePlatform;
use mnd_graph::types::WEdge;
use mnd_graph::{gen, EdgeList};
use mnd_kernels::oracle::kruskal_msf;
use mnd_pregel::framework::BspPartitioning;
use mnd_pregel::{pregel_bfs, pregel_msf, BspConfig};
use proptest::prelude::*;

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = EdgeList> {
    (
        2..max_v,
        proptest::collection::vec((0u32..max_v, 0u32..max_v, 1u32..500), 0..max_e),
    )
        .prop_map(|(n, raw)| {
            EdgeList::from_raw(
                n,
                raw.into_iter()
                    .map(|(a, b, w)| WEdge::new(a % n, b % n, w))
                    .collect(),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn msf_matches_oracle_under_all_optimisation_combos(
        el in arb_edges(80, 250),
        nranks in 1usize..6,
        combine in proptest::bool::ANY,
        mirror in proptest::bool::ANY,
        hash in proptest::bool::ANY,
    ) {
        let cfg = BspConfig {
            combine,
            mirror_threshold: mirror.then_some(8),
            partitioning: if hash { BspPartitioning::Hash } else { BspPartitioning::Range1D },
            ..Default::default()
        };
        let r = pregel_msf(&el, nranks, &NodePlatform::amd_cluster(), &cfg);
        prop_assert_eq!(r.msf, kruskal_msf(&el));
    }

    #[test]
    fn bfs_matches_oracle_under_partitionings(
        el in arb_edges(60, 200),
        nranks in 1usize..5,
        hash in proptest::bool::ANY,
    ) {
        let cfg = BspConfig {
            partitioning: if hash { BspPartitioning::Hash } else { BspPartitioning::Range1D },
            ..Default::default()
        };
        let r = pregel_bfs(&el, 0, nranks, &NodePlatform::amd_cluster(), &cfg);
        let oracle = mnd_graph::components::bfs_distances(
            &mnd_graph::CsrGraph::from_edge_list(&el),
            0,
        );
        prop_assert_eq!(r.dist, oracle);
    }

    #[test]
    fn msf_supersteps_scale_with_rounds(el in arb_edges(100, 300)) {
        let r = pregel_msf(&el, 4, &NodePlatform::amd_cluster(), &BspConfig::default());
        if r.rounds > 0 {
            // Each round: candidates + proposals + >=1 jump pair + update.
            prop_assert!(r.supersteps >= 5 * r.rounds);
            // …and a bounded number of jump pairs per round.
            prop_assert!(r.supersteps <= 80 * r.rounds + 4);
        }
    }
}

#[test]
fn per_message_cost_is_the_dominant_comm_knob() {
    let el = gen::web_crawl(2000, 16_000, gen::CrawlParams::default(), 5);
    let plat = NodePlatform::amd_cluster();
    let run = |per_message_cost: f64| {
        let cfg = BspConfig {
            per_message_cost,
            sim_scale: 2048.0,
            ..Default::default()
        };
        pregel_msf(&el, 8, &plat, &cfg)
    };
    let cheap = run(0.0);
    let costly = run(0.2e-6);
    assert_eq!(cheap.msf, costly.msf);
    assert!(
        costly.comm_time > 2.0 * cheap.comm_time,
        "stack cost must dominate: {} vs {}",
        costly.comm_time,
        cheap.comm_time
    );
}

#[test]
fn hash_partitioning_costs_more_comm_than_range_on_local_graphs() {
    // The central comparison premise: on a locality-rich graph, hash
    // partitioning sends more bytes than range partitioning.
    let el = gen::web_crawl(4000, 32_000, gen::CrawlParams::default(), 9);
    let plat = NodePlatform::amd_cluster();
    let bytes = |part| {
        let cfg = BspConfig {
            partitioning: part,
            ..Default::default()
        };
        let r = pregel_msf(&el, 8, &plat, &cfg);
        r.rank_stats.iter().map(|s| s.bytes_sent).sum::<u64>()
    };
    let hash = bytes(BspPartitioning::Hash);
    let range = bytes(BspPartitioning::Range1D);
    assert!(hash > range, "hash {hash} must exceed range {range}");
}
